"""The FlexER pipeline (Section 4).

FlexER solves MIER in three phases:

1. **Intent-based representations** — per-intent matchers (the
   In-parallel solver by default, or the multi-task Multi-label solver)
   are trained on the training pairs and produce a latent representation
   of every candidate pair under every intent.
2. **Graph creation** — a multiplex intent graph is built over all
   candidate pairs (training, validation, and test), with intra-layer kNN
   edges and inter-layer peer edges.
3. **Message propagation and prediction per intent** — one GraphSAGE
   model per target intent is trained with supervision on the training
   pairs of that intent's layer (validation pairs select the best epoch)
   and scores every pair of the layer; test-pair predictions form the
   intent's resolution.

The phase boundaries are exposed as module-level functions
(:func:`combine_candidate_sets`, :func:`compute_representations`) so the
staged runner in :mod:`repro.pipeline` can execute — and cache — each
phase as an addressable stage while :class:`FlexER` keeps the original
one-shot API.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from ..config import FlexERConfig
from ..data.pairs import CandidateSet
from ..data.splits import DatasetSplit
from ..exceptions import IntentError, MatchingError, NotFittedError
from ..graph.multiplex import MultiplexGraph
from ..matching import features as _features
from ..perf.instrument import observe as perf_observe
from ..registry import GRAPH_BUILDERS, INTENT_CLASSIFIERS, SOLVERS
from .mier import MIERSolution

#: Values the deprecated ``representation_source`` argument accepted.
_LEGACY_REPRESENTATION_SOURCES = ("in_parallel", "multi_label")


def combine_candidate_sets(
    parts: Sequence[CandidateSet],
) -> tuple[CandidateSet, list[np.ndarray]]:
    """Concatenate candidate sets sharing a dataset; return index ranges.

    This is the pipeline's canonical ordering contract: representations,
    graph nodes, and GNN supervision indices all refer to positions in
    the combined candidate set returned here.
    """
    non_empty = [part for part in parts if len(part) > 0]
    if not non_empty:
        raise MatchingError("cannot combine empty candidate sets")
    dataset = non_empty[0].dataset
    intents = non_empty[0].intents
    combined = CandidateSet(dataset, intents=intents)
    ranges: list[np.ndarray] = []
    cursor = 0
    for part in parts:
        indices = np.arange(cursor, cursor + len(part), dtype=np.int64)
        ranges.append(indices)
        for labeled in part:
            combined.add(labeled)
        cursor += len(part)
    return combined, ranges


def compute_representations(
    solver,
    candidates: CandidateSet,
    augment_with_scores: bool = True,
) -> dict[str, np.ndarray]:
    """Per-intent representations of ``candidates`` from a fitted solver.

    When ``augment_with_scores`` is true each intent's latent matrix is
    concatenated with the matcher's likelihood score for that intent, so
    message propagation starts from the matcher's decision (Section
    4.1.1).

    Solvers exposing ``intent_outputs`` produce both matrices from one
    encode + forward pass (bit-identical to the two-call path); the
    fused path is bypassed when the vectorized feature encoder is
    disabled so reference timings reflect the original call graph.
    """
    if augment_with_scores:
        if _features.VECTORIZED and hasattr(solver, "intent_outputs"):
            representations, probabilities = solver.intent_outputs(candidates)
        else:
            representations = solver.representations(candidates)
            probabilities = solver.predict_proba(candidates)
        return {
            intent: np.hstack([matrix, probabilities[intent][:, np.newaxis]])
            for intent, matrix in representations.items()
        }
    return solver.representations(candidates)


@dataclass
class FlexERTimings:
    """Wall-clock timings of a FlexER run (the Table 9 analysis).

    Every stage timing recorded here is also reported to the active
    :class:`repro.perf.PerfSession` (when one is active) through
    :meth:`record_stage`, so profiling a run needs no changes to the
    pipeline code.
    """

    matcher_training_seconds: float = 0.0
    representation_seconds: float = 0.0
    graph_build_seconds: float = 0.0
    gnn_seconds_per_intent: dict[str, float] = field(default_factory=dict)

    @property
    def gnn_total_seconds(self) -> float:
        """Total GNN training + testing time over all intents."""
        return float(sum(self.gnn_seconds_per_intent.values()))

    @property
    def total_seconds(self) -> float:
        """Total wall time across all recorded stages."""
        return (
            self.matcher_training_seconds
            + self.representation_seconds
            + self.graph_build_seconds
            + self.gnn_total_seconds
        )

    def record_stage(self, stage: str, seconds: float, intent: str | None = None) -> None:
        """Record one stage timing and forward it to any active perf session.

        ``stage`` is one of ``"matcher-fit"``, ``"representation"``,
        ``"graph-build"``, or ``"gnn"`` (the latter with ``intent``).
        """
        if stage == "matcher-fit":
            self.matcher_training_seconds = seconds
        elif stage == "representation":
            self.representation_seconds = seconds
        elif stage == "graph-build":
            self.graph_build_seconds = seconds
        elif stage == "gnn":
            self.gnn_seconds_per_intent[intent or ""] = seconds
        else:
            raise ValueError(f"unknown FlexER stage: {stage!r}")
        name = f"{stage}:{intent}" if intent is not None else stage
        perf_observe(f"flexer:{name}", seconds)

    def as_dict(self) -> dict[str, object]:
        """JSON-serializable stage breakdown (used by ``BENCH_perf.json``)."""
        return {
            "matcher_training_seconds": self.matcher_training_seconds,
            "representation_seconds": self.representation_seconds,
            "graph_build_seconds": self.graph_build_seconds,
            "gnn_seconds_per_intent": dict(self.gnn_seconds_per_intent),
            "gnn_total_seconds": self.gnn_total_seconds,
            "total_seconds": self.total_seconds,
        }


@dataclass
class FlexERResult:
    """Everything a FlexER run produces: the solution, the graph, timings."""

    solution: MIERSolution
    graph: MultiplexGraph
    timings: FlexERTimings
    validation_f1: dict[str, float] = field(default_factory=dict)


class FlexER:
    """End-to-end FlexER solver for the MIER problem.

    Every pluggable component — the representation solver, the graph
    builder, and the per-intent classifier — is constructed through
    :mod:`repro.registry` from the specs in ``config``
    (``config.solver``, ``config.graph_builder``, ``config.classifier``),
    so swapping a backend is a config change, not a code change.

    Parameters
    ----------
    intents:
        Ordered intent names the solver is trained for.
    config:
        Matcher, graph, and GNN hyper-parameters plus component specs.
    representation_source:
        Deprecated alias for ``config.solver`` (``"in_parallel"`` or
        ``"multi_label"``); kept for backward compatibility and
        overrides the config's spec when given.
    augment_with_scores:
        When true (default), each node's initial feature vector is the
        matcher's latent pair representation concatenated with its
        likelihood score for that intent, so message propagation starts
        from the matcher's decision and refines it with cross-intent
        information.
    """

    def __init__(
        self,
        intents: Sequence[str],
        config: FlexERConfig | None = None,
        representation_source: str | None = None,
        augment_with_scores: bool = True,
    ) -> None:
        if not intents:
            raise IntentError("FlexER requires at least one intent")
        self.intents = tuple(intents)
        self.config = config or FlexERConfig()
        solver_spec = self.config.solver
        if representation_source is not None:
            if representation_source not in _LEGACY_REPRESENTATION_SOURCES:
                raise MatchingError(
                    f"unknown representation source: {representation_source!r}"
                )
            warnings.warn(
                "FlexER(representation_source=...) is deprecated; pass "
                "FlexERConfig(solver=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            solver_spec = representation_source
        self.augment_with_scores = augment_with_scores
        self.solver = SOLVERS.create(
            solver_spec, intents=self.intents, matcher_config=self.config.matcher
        )
        self.graph_builder = GRAPH_BUILDERS.create(
            self.config.graph_builder, config=self.config.graph
        )
        self._train: CandidateSet | None = None
        self._valid: CandidateSet | None = None
        self.timings = FlexERTimings()

    @property
    def representation_source(self) -> str:
        """Registry key of the active solver (back-compat accessor)."""
        return self.solver.spec_type

    # ------------------------------------------------------------------ fit

    def fit(self, train: CandidateSet, valid: CandidateSet | None = None) -> "FlexER":
        """Train the per-intent matchers and remember the labeled splits."""
        start = time.perf_counter()
        self.solver.fit(train)
        # A fresh timings object per fit: results of earlier runs keep
        # their own timings instead of aliasing a shared mutable one.
        self.timings = FlexERTimings()
        self.timings.record_stage("matcher-fit", time.perf_counter() - start)
        self._train = train
        self._valid = valid
        return self

    # ------------------------------------------------------------- internals

    def _require_fitted(self) -> CandidateSet:
        if self._train is None:
            raise NotFittedError("FlexER must be fitted before predicting")
        return self._train

    def _resolve_layer_intents(self, intent_subset: Sequence[str] | None) -> tuple[str, ...]:
        if intent_subset is None:
            return self.intents
        unknown = set(intent_subset) - set(self.intents)
        if unknown:
            raise IntentError(f"intent subset contains unknown intents: {sorted(unknown)}")
        return tuple(intent_subset)

    # ---------------------------------------------------------------- predict

    def build_graph(
        self,
        candidates: CandidateSet,
        intent_subset: Sequence[str] | None = None,
    ) -> MultiplexGraph:
        """Compute representations and build the multiplex graph over ``candidates``."""
        layer_intents = self._resolve_layer_intents(intent_subset)
        start = time.perf_counter()
        representations = compute_representations(
            self.solver, candidates, self.augment_with_scores
        )
        self.timings.record_stage("representation", time.perf_counter() - start)

        start = time.perf_counter()
        graph = self.graph_builder.build(representations, intents=layer_intents)
        self.timings.record_stage("graph-build", time.perf_counter() - start)
        return graph

    def predict(
        self,
        test: CandidateSet,
        intent_subset: Sequence[str] | None = None,
        target_intents: Sequence[str] | None = None,
    ) -> FlexERResult:
        """Run graph construction and per-intent GNN prediction on ``test``.

        Parameters
        ----------
        test:
            Labeled test candidate set (labels are used only for
            evaluation downstream, never during prediction).
        intent_subset:
            Layers to include in the multiplex graph (Figure 6 analysis);
            defaults to all intents.
        target_intents:
            Intents to predict; defaults to the graph's layers.  Every
            target intent must be one of the graph's layers.
        """
        train = self._require_fitted()
        valid = self._valid
        layer_intents = self._resolve_layer_intents(intent_subset)
        targets = tuple(target_intents) if target_intents is not None else layer_intents
        outside = set(targets) - set(layer_intents)
        if outside:
            raise IntentError(
                f"target intents {sorted(outside)} are not part of the graph layers"
            )

        parts = [train]
        if valid is not None and len(valid) > 0:
            parts.append(valid)
        parts.append(test)
        combined, ranges = combine_candidate_sets(parts)
        train_index = ranges[0]
        valid_index = ranges[1] if valid is not None and len(valid) > 0 else None
        test_index = ranges[-1]

        # Each predict gets a fresh timings instance (matcher time carried
        # over from fit) so repeated predictions neither accumulate GNN
        # seconds nor alias one mutable timings object across results.
        self.timings = FlexERTimings(
            matcher_training_seconds=self.timings.matcher_training_seconds
        )
        timings = self.timings
        graph = self.build_graph(combined, intent_subset=layer_intents)

        predictions: dict[str, np.ndarray] = {}
        probabilities: dict[str, np.ndarray] = {}
        validation_f1: dict[str, float] = {}
        for intent in targets:
            start = time.perf_counter()
            classifier = INTENT_CLASSIFIERS.create(
                self.config.classifier, config=self.config.gnn
            )
            result = classifier.fit_predict(
                graph,
                target_intent=intent,
                train_index=train_index,
                train_labels=train.labels(intent),
                valid_index=valid_index,
                valid_labels=(
                    valid.labels(intent)
                    if valid_index is not None and valid is not None
                    else None
                ),
            )
            elapsed = time.perf_counter() - start
            timings.record_stage("gnn", elapsed, intent=intent)
            test_probabilities = result.probabilities[test_index]
            probabilities[intent] = test_probabilities
            predictions[intent] = (test_probabilities >= 0.5).astype(np.int64)
            validation_f1[intent] = result.best_validation_f1

        solution = MIERSolution(
            candidates=test,
            predictions=predictions,
            probabilities=probabilities,
            solver_name=f"FlexER[{self.representation_source}]",
        )
        return FlexERResult(
            solution=solution,
            graph=graph,
            timings=timings,
            validation_f1=validation_f1,
        )

    # ------------------------------------------------------------ convenience

    def run_split(
        self,
        split: DatasetSplit,
        intent_subset: Sequence[str] | None = None,
        target_intents: Sequence[str] | None = None,
    ) -> FlexERResult:
        """Fit on the split's train/valid parts and predict its test part.

        .. deprecated::
            The one-shot ``run_split`` call pattern predates the
            fit/serve lifecycle split.  Call :meth:`fit` and
            :meth:`predict` explicitly, or use the train-once /
            query-many API (:func:`repro.fit` →
            :meth:`repro.ResolverModel.query`).  This shim keeps the old
            pattern working unchanged.
        """
        warnings.warn(
            "FlexER.run_split(split) is deprecated; call fit(split.train, "
            "split.valid) + predict(split.test) explicitly, or use the "
            "repro.fit() / ResolverModel.query() lifecycle",
            DeprecationWarning,
            stacklevel=2,
        )
        self.fit(split.train, split.valid if len(split.valid) > 0 else None)
        return self.predict(
            split.test,
            intent_subset=intent_subset,
            target_intents=target_intents,
        )
