"""FlexER core: intents, resolutions, MIER problem objects, and the pipeline."""

from .intents import Intent, IntentSet, IntentRelationships
from .resolution import Resolution
from .mier import MIERProblem, MIERSolution
from .flexer import (
    FlexER,
    FlexERConfig,
    FlexERResult,
    FlexERTimings,
    combine_candidate_sets,
    compute_representations,
)

__all__ = [
    "Intent",
    "IntentSet",
    "IntentRelationships",
    "Resolution",
    "MIERProblem",
    "MIERSolution",
    "FlexER",
    "FlexERConfig",
    "FlexERResult",
    "FlexERTimings",
    "combine_candidate_sets",
    "compute_representations",
]
