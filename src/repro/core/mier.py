"""The multiple intents entity resolution (MIER) problem and its solutions.

Problem 1 of the paper: given a dataset, a candidate pair set and a set
of intents, produce one resolution per intent.  :class:`MIERSolution`
bundles the per-intent predictions and resolutions produced by any solver
(the baselines of Section 3 or FlexER itself) so evaluation and reporting
are uniform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping

import numpy as np

from ..data.pairs import CandidateSet
from ..exceptions import EvaluationError, IntentError
from .resolution import Resolution


@dataclass(frozen=True)
class MIERProblem:
    """A MIER problem instance: candidates labeled for a set of intents."""

    candidates: CandidateSet
    intents: tuple[str, ...]

    def __post_init__(self) -> None:
        missing = set(self.intents) - set(self.candidates.intents)
        if missing:
            raise IntentError(f"candidates lack labels for intents: {sorted(missing)}")
        if not self.intents:
            raise IntentError("a MIER problem requires at least one intent")

    @property
    def num_pairs(self) -> int:
        """Number of candidate pairs."""
        return len(self.candidates)

    def golden_resolutions(self) -> dict[str, Resolution]:
        """The golden-standard resolution of every intent."""
        return {
            intent: Resolution.from_labels(self.candidates, intent)
            for intent in self.intents
        }


@dataclass
class MIERSolution:
    """Per-intent predictions (and resolutions) over a candidate set."""

    candidates: CandidateSet
    predictions: dict[str, np.ndarray]
    probabilities: dict[str, np.ndarray] = field(default_factory=dict)
    solver_name: str = "unknown"

    def __post_init__(self) -> None:
        for intent, prediction in self.predictions.items():
            array = np.asarray(prediction, dtype=np.int64).ravel()
            if array.shape[0] != len(self.candidates):
                raise EvaluationError(
                    f"predictions for intent {intent!r} have {array.shape[0]} entries, "
                    f"expected {len(self.candidates)}"
                )
            self.predictions[intent] = array

    @property
    def intents(self) -> tuple[str, ...]:
        """Intents covered by this solution."""
        return tuple(self.predictions)

    def prediction(self, intent: str) -> np.ndarray:
        """Binary predictions for ``intent``."""
        try:
            return self.predictions[intent]
        except KeyError:
            raise IntentError(f"solution has no predictions for intent {intent!r}") from None

    def resolution(self, intent: str) -> Resolution:
        """The resolution induced by the predictions for ``intent``."""
        return Resolution.from_predictions(self.candidates, self.prediction(intent), intent)

    def resolutions(self) -> dict[str, Resolution]:
        """All per-intent resolutions."""
        return {intent: self.resolution(intent) for intent in self.intents}

    def prediction_matrix(self, intents: tuple[str, ...] | None = None) -> np.ndarray:
        """Stack predictions into an ``(n, P)`` matrix in intent order."""
        names = intents or self.intents
        return np.stack([self.prediction(name) for name in names], axis=1)

    @classmethod
    def from_mapping(
        cls,
        candidates: CandidateSet,
        predictions: Mapping[str, np.ndarray],
        probabilities: Mapping[str, np.ndarray] | None = None,
        solver_name: str = "unknown",
    ) -> "MIERSolution":
        """Build a solution from plain prediction mappings."""
        return cls(
            candidates=candidates,
            predictions=dict(predictions),
            probabilities=dict(probabilities or {}),
            solver_name=solver_name,
        )
