"""Resolution intents and their interrelationships (Sections 2.2 and 2.4).

An intent is, formally, an entity set and a mapping from records to it
(Definition 2).  Pragmatically the mapping is unknown and the intent is
expressed only through labeled record pairs, so this module works at the
label level: it detects *overlapping* intents (Definition 3) and
*subsumed* intents (Definition 4) from a labeled candidate set, which is
exactly the information the preventable-error analysis (Eq. 10) relies
on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping

import numpy as np

from ..data.pairs import CandidateSet
from ..exceptions import IntentError


@dataclass(frozen=True)
class Intent:
    """A named resolution intent.

    Attributes
    ----------
    name:
        Stable identifier used to key labels, predictions, and reports.
    description:
        Optional human-readable description (for reports only — the model
        never sees intent semantics, matching the paper's setting).
    """

    name: str
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise IntentError("intent name must be non-empty")


@dataclass
class IntentRelationships:
    """Pairwise intent relationships derived from labels.

    Attributes
    ----------
    overlaps:
        Set of unordered intent-name pairs that overlap (share at least
        one positive pair).
    subsumptions:
        Mapping ``narrow -> set of broader intents``: ``narrow`` is a
        sub-intent of each of them (every positive of ``narrow`` is a
        positive of the broader intent).
    """

    overlaps: set[frozenset[str]] = field(default_factory=set)
    subsumptions: dict[str, set[str]] = field(default_factory=dict)

    def overlapping(self, left: str, right: str) -> bool:
        """Whether ``left`` and ``right`` overlap (Definition 3)."""
        return frozenset((left, right)) in self.overlaps

    def subsumed_by(self, intent: str) -> set[str]:
        """Intents that subsume ``intent`` (are implied by it)."""
        return set(self.subsumptions.get(intent, set()))

    def is_sub_intent(self, narrow: str, broad: str) -> bool:
        """Whether ``narrow`` is a sub-intent of ``broad`` (Definition 4)."""
        return broad in self.subsumptions.get(narrow, set())


class IntentSet:
    """An ordered set of intents with label-derived relationship analysis."""

    def __init__(self, intents: Iterable[Intent | str]) -> None:
        self._intents: list[Intent] = []
        seen: set[str] = set()
        for item in intents:
            intent = item if isinstance(item, Intent) else Intent(name=item)
            if intent.name in seen:
                raise IntentError(f"duplicate intent name: {intent.name!r}")
            seen.add(intent.name)
            self._intents.append(intent)
        if not self._intents:
            raise IntentError("an intent set needs at least one intent")

    def __len__(self) -> int:
        return len(self._intents)

    def __iter__(self):
        return iter(self._intents)

    def __contains__(self, name: str) -> bool:
        return any(intent.name == name for intent in self._intents)

    @property
    def names(self) -> tuple[str, ...]:
        """Intent names in declaration order."""
        return tuple(intent.name for intent in self._intents)

    def get(self, name: str) -> Intent:
        """Return the intent named ``name``."""
        for intent in self._intents:
            if intent.name == name:
                return intent
        raise IntentError(f"unknown intent: {name!r}")

    # ----------------------------------------------------------- relationships

    @staticmethod
    def _label_map(candidates: CandidateSet, names: tuple[str, ...]) -> dict[str, np.ndarray]:
        missing = set(names) - set(candidates.intents)
        if missing:
            raise IntentError(f"candidate set lacks labels for intents: {sorted(missing)}")
        return {name: candidates.labels(name) for name in names}

    def relationships(self, candidates: CandidateSet) -> IntentRelationships:
        """Derive overlap and subsumption relationships from labels.

        Overlap (Definition 3): the two intents share at least one
        positive pair.  Subsumption (Definition 4): ``narrow`` is a
        sub-intent of ``broad`` when no pair is positive for ``narrow``
        and negative for ``broad``.
        """
        labels = self._label_map(candidates, self.names)
        relationships = IntentRelationships()
        for narrow in self.names:
            relationships.subsumptions.setdefault(narrow, set())
        for i, left in enumerate(self.names):
            for right in self.names[i + 1 :]:
                left_labels = labels[left]
                right_labels = labels[right]
                if bool(np.any((left_labels == 1) & (right_labels == 1))):
                    relationships.overlaps.add(frozenset((left, right)))
                if not bool(np.any((left_labels == 1) & (right_labels == 0))):
                    relationships.subsumptions[left].add(right)
                if not bool(np.any((right_labels == 1) & (left_labels == 0))):
                    relationships.subsumptions[right].add(left)
        return relationships

    def subsumption_map(self, candidates: CandidateSet) -> dict[str, set[str]]:
        """Convenience wrapper returning only the subsumption mapping."""
        return self.relationships(candidates).subsumptions

    @classmethod
    def from_candidates(cls, candidates: CandidateSet) -> "IntentSet":
        """Build an intent set from the intents labeled on a candidate set."""
        return cls(candidates.intents)

    @classmethod
    def from_names(
        cls, names: Iterable[str], descriptions: Mapping[str, str] | None = None
    ) -> "IntentSet":
        """Build an intent set from names with optional descriptions."""
        descriptions = descriptions or {}
        return cls(Intent(name=name, description=descriptions.get(name, "")) for name in names)
