"""Resolutions, entity mappings, clustering, and clean views (Section 2.1).

A *resolution* ``M ⊆ C`` is the set of record pairs a matcher resolved
to the same entity under some intent.  This module provides the
resolution value type, the satisfaction check of Definition 1, the
merging phase (equivalence-class clustering via transitive closure), and
clean-view generation by representative selection (Example 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping, Sequence

import networkx as nx
import numpy as np

from ..data.pairs import CandidateSet, RecordPair
from ..data.records import Dataset
from ..exceptions import DataError


@dataclass
class Resolution:
    """A set of matched record pairs for one intent."""

    pairs: set[RecordPair] = field(default_factory=set)
    intent: str = "equivalence"

    def __len__(self) -> int:
        return len(self.pairs)

    def __contains__(self, pair: RecordPair) -> bool:
        return pair in self.pairs

    def __iter__(self):
        return iter(self.pairs)

    def add(self, pair: RecordPair) -> None:
        """Add a matched pair to the resolution."""
        self.pairs.add(pair)

    @classmethod
    def from_predictions(
        cls,
        candidates: CandidateSet,
        predictions: np.ndarray | Sequence[int],
        intent: str = "equivalence",
    ) -> "Resolution":
        """Build a resolution from binary predictions aligned with ``candidates``."""
        prediction_array = np.asarray(predictions, dtype=np.int64).ravel()
        if prediction_array.shape[0] != len(candidates):
            raise DataError(
                "predictions must have one entry per candidate pair "
                f"({prediction_array.shape[0]} vs {len(candidates)})"
            )
        pairs = {
            labeled.pair
            for labeled, prediction in zip(candidates, prediction_array)
            if prediction == 1
        }
        return cls(pairs=pairs, intent=intent)

    @classmethod
    def from_labels(cls, candidates: CandidateSet, intent: str) -> "Resolution":
        """The golden-standard resolution ``M*`` of ``intent``."""
        return cls(pairs=candidates.positive_pairs(intent), intent=intent)

    # ------------------------------------------------------------ satisfaction

    def satisfies(
        self,
        entity_mapping: Mapping[str, str],
        candidates: Iterable[RecordPair],
    ) -> bool:
        """Check Definition 1: ``M |= θ`` over the candidate pairs.

        For every candidate pair, membership in the resolution must be
        equivalent to the two records mapping to the same entity.
        """
        for pair in candidates:
            left_entity = entity_mapping.get(pair.left_id)
            right_entity = entity_mapping.get(pair.right_id)
            same_entity = left_entity is not None and left_entity == right_entity
            if (pair in self.pairs) != same_entity:
                return False
        return True

    # --------------------------------------------------------------- merging

    def clusters(self, dataset: Dataset | None = None) -> list[set[str]]:
        """Equivalence classes induced by the resolution (transitive closure).

        Parameters
        ----------
        dataset:
            When given, singleton clusters are produced for records that
            appear in no matched pair, so the clustering covers the whole
            dataset.
        """
        graph = nx.Graph()
        if dataset is not None:
            graph.add_nodes_from(dataset.record_ids)
        for pair in self.pairs:
            graph.add_edge(pair.left_id, pair.right_id)
        return [set(component) for component in nx.connected_components(graph)]

    def clean_view(self, dataset: Dataset) -> Dataset:
        """Derive a clean view by keeping one representative per cluster.

        Representatives are chosen heuristically by dataset order (the
        first record of each cluster), as in Example 2.4.
        """
        order = {record_id: position for position, record_id in enumerate(dataset.record_ids)}
        representatives: list[str] = []
        for cluster in self.clusters(dataset):
            representative = min(cluster, key=lambda record_id: order.get(record_id, len(order)))
            representatives.append(representative)
        representatives.sort(key=lambda record_id: order.get(record_id, len(order)))
        return dataset.subset(representatives, name=f"{dataset.name}-clean-{self.intent}")

    # ------------------------------------------------------------- reporting

    def describe(self) -> dict[str, object]:
        """Size statistics of the resolution."""
        return {"intent": self.intent, "num_matched_pairs": len(self.pairs)}
