"""Tokenization utilities shared by blockers, matchers, and similarity measures."""

from __future__ import annotations

import re

_WORD_RE = re.compile(r"[a-z0-9]+(?:'[a-z]+)?")
_ALNUM_RE = re.compile(r"[^a-z0-9 ]+")


def normalize(text: str) -> str:
    """Lowercase, strip punctuation, and collapse whitespace."""
    lowered = text.lower()
    cleaned = _ALNUM_RE.sub(" ", lowered)
    return " ".join(cleaned.split())


def word_tokens(text: str) -> list[str]:
    """Split ``text`` into lowercase alphanumeric word tokens."""
    return _WORD_RE.findall(text.lower())


def char_tokens(text: str, keep_spaces: bool = False) -> list[str]:
    """Split normalized ``text`` into characters (optionally keeping spaces)."""
    normalized = normalize(text)
    if keep_spaces:
        return list(normalized)
    return [ch for ch in normalized if ch != " "]


def token_set(text: str) -> set[str]:
    """Set of distinct word tokens of ``text``."""
    return set(word_tokens(text))
