"""Text processing substrate: tokenization, n-grams, similarity, vectorizers."""

from .tokenize import normalize, word_tokens, char_tokens, token_set
from .ngrams import char_ngrams, word_ngrams, ngram_profile, shared_ngrams
from .similarity import (
    levenshtein_distance,
    levenshtein_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    jaccard_similarity,
    token_jaccard,
    qgram_jaccard,
    overlap_coefficient,
    dice_coefficient,
    cosine_token_similarity,
    monge_elkan_similarity,
    SIMILARITY_FUNCTIONS,
)
from .vectorizers import (
    HashingVectorizer,
    HashingVectorizerConfig,
    TfidfVectorizer,
)

__all__ = [
    "normalize",
    "word_tokens",
    "char_tokens",
    "token_set",
    "char_ngrams",
    "word_ngrams",
    "ngram_profile",
    "shared_ngrams",
    "levenshtein_distance",
    "levenshtein_similarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "jaccard_similarity",
    "token_jaccard",
    "qgram_jaccard",
    "overlap_coefficient",
    "dice_coefficient",
    "cosine_token_similarity",
    "monge_elkan_similarity",
    "SIMILARITY_FUNCTIONS",
    "HashingVectorizer",
    "HashingVectorizerConfig",
    "TfidfVectorizer",
]
