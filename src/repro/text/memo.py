"""Per-record text memoization shared by blocking and feature encoding.

Blocking and pair-feature encoding both derive per-record views of the
raw text — serialized text, word tokens, token sets, character n-gram
sets, bag-of-token counts.  Computed naively these views are rebuilt once
per *pair*, i.e. ``O(|C|)`` redundant tokenizations for ``O(|D|)``
distinct records.  :class:`TextMemo` scopes the derived views to one
dataset pass so every record is tokenized exactly once regardless of how
many candidate pairs it participates in.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable

from ..data.records import Dataset, Record
from .ngrams import char_ngrams
from .tokenize import word_tokens


class TextMemo:
    """Memoized per-record text views over one dataset.

    Parameters
    ----------
    dataset:
        The dataset whose records are queried.
    attributes:
        Attributes included in the textual form (``None`` uses all), as
        in :meth:`~repro.data.records.Record.text`.
    """

    def __init__(self, dataset: Dataset, attributes: Iterable[str] | None = None) -> None:
        self.dataset = dataset
        self.attributes = tuple(attributes) if attributes is not None else None
        self._texts: dict[str, str] = {}
        self._tokens: dict[str, list[str]] = {}
        self._token_sets: dict[str, frozenset[str]] = {}
        self._ngram_sets: dict[int, dict[str, frozenset[str]]] = {}
        self._token_counts: dict[str, Counter] = {}
        self._token_norms: dict[str, float] = {}

    def _record(self, record_id: str) -> Record:
        return self.dataset[record_id]

    def text(self, record_id: str) -> str:
        """The record's concatenated text (memoized ``Record.text``)."""
        cached = self._texts.get(record_id)
        if cached is None:
            cached = self._record(record_id).text(self.attributes)
            self._texts[record_id] = cached
        return cached

    def tokens(self, record_id: str) -> list[str]:
        """Word tokens of the record text (memoized)."""
        cached = self._tokens.get(record_id)
        if cached is None:
            cached = word_tokens(self.text(record_id))
            self._tokens[record_id] = cached
        return cached

    def token_set(self, record_id: str) -> frozenset[str]:
        """Distinct word tokens of the record text (memoized)."""
        cached = self._token_sets.get(record_id)
        if cached is None:
            cached = frozenset(self.tokens(record_id))
            self._token_sets[record_id] = cached
        return cached

    def ngram_set(self, record_id: str, n: int) -> frozenset[str]:
        """Distinct character ``n``-grams of the record text (memoized)."""
        per_size = self._ngram_sets.setdefault(n, {})
        cached = per_size.get(record_id)
        if cached is None:
            cached = frozenset(char_ngrams(self.text(record_id), n))
            per_size[record_id] = cached
        return cached

    def token_counts(self, record_id: str) -> Counter:
        """Bag-of-token counts of the record text (memoized)."""
        cached = self._token_counts.get(record_id)
        if cached is None:
            cached = Counter(self.tokens(record_id))
            self._token_counts[record_id] = cached
        return cached

    def token_norm(self, record_id: str) -> float:
        """L2 norm of the bag-of-token count vector (memoized)."""
        cached = self._token_norms.get(record_id)
        if cached is None:
            counts = self.token_counts(record_id)
            cached = math.sqrt(sum(count * count for count in counts.values()))
            self._token_norms[record_id] = cached
        return cached
