"""Classic string-similarity measures.

These measures play two roles in the reproduction: they provide the
hand-crafted features appended to the hashed pair representation of the
matcher (prior-art feature-based matchers, Section 2.1), and they back
several unit-level invariants (symmetry, boundedness) exercised by the
property-based tests.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from .ngrams import char_ngrams
from .tokenize import token_set, word_tokens


def levenshtein_distance(left: str, right: str) -> int:
    """Edit distance (insertions, deletions, substitutions) between two strings."""
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    if len(left) < len(right):
        left, right = right, left
    previous = list(range(len(right) + 1))
    for i, left_char in enumerate(left, start=1):
        current = [i]
        for j, right_char in enumerate(right, start=1):
            insert_cost = current[j - 1] + 1
            delete_cost = previous[j] + 1
            substitute_cost = previous[j - 1] + (left_char != right_char)
            current.append(min(insert_cost, delete_cost, substitute_cost))
        previous = current
    return previous[-1]


def levenshtein_distances_batch(
    lefts: Sequence[str], rights: Sequence[str]
) -> np.ndarray:
    """Edit distances of ``N`` string pairs computed with a batched DP.

    The classic row-by-row dynamic program is evaluated for all pairs
    simultaneously: each DP row update is a handful of numpy operations
    over an ``(N, max_len + 1)`` integer matrix instead of a Python inner
    loop per cell.  The row recurrence

    ``current[j] = min(current[j - 1] + 1, previous[j] + 1,
    previous[j - 1] + substitution_cost)``

    carries a prefix dependency through ``current[j - 1] + 1``; it is
    resolved in closed form as ``current[j] = j + cummin(t - j)`` where
    ``t[j] = min(previous[j] + 1, previous[j - 1] + substitution_cost)``
    (and ``t[0]`` is the first column's boundary value), so every row is
    fully vectorized.  All arithmetic is exact int64, therefore the
    result is identical to :func:`levenshtein_distance` on every pair.
    """
    if len(lefts) != len(rights):
        raise ValueError("lefts and rights must have the same length")
    n = len(lefts)
    if n == 0:
        return np.zeros(0, dtype=np.int64)

    # Mirror the scalar implementation: the longer string drives the
    # outer loop so the DP rows span the shorter one.
    longs: list[str] = []
    shorts: list[str] = []
    for left, right in zip(lefts, rights):
        if len(left) < len(right):
            left, right = right, left
        longs.append(left)
        shorts.append(right)

    long_lengths = np.fromiter((len(s) for s in longs), dtype=np.int64, count=n)
    short_lengths = np.fromiter((len(s) for s in shorts), dtype=np.int64, count=n)
    max_long = int(long_lengths.max(initial=0))
    max_short = int(short_lengths.max(initial=0))
    if max_short == 0:
        # Every shorter string is empty: the distance is the longer length.
        return long_lengths

    # Code-point matrices padded with sentinels that never match.
    long_codes = np.full((n, max_long), -1, dtype=np.int64)
    short_codes = np.full((n, max_short), -2, dtype=np.int64)
    for row, text in enumerate(longs):
        if text:
            long_codes[row, : len(text)] = np.frombuffer(
                text.encode("utf-32-le"), dtype=np.uint32
            ).astype(np.int64)
    for row, text in enumerate(shorts):
        if text:
            short_codes[row, : len(text)] = np.frombuffer(
                text.encode("utf-32-le"), dtype=np.uint32
            ).astype(np.int64)

    column = np.arange(max_short + 1, dtype=np.int64)
    previous = np.broadcast_to(column, (n, max_short + 1)).copy()
    t = np.empty_like(previous)
    for i in range(1, max_long + 1):
        np.minimum(
            previous[:, 1:] + 1,
            previous[:, :-1] + (long_codes[:, i - 1 : i] != short_codes),
            out=t[:, 1:],
        )
        t[:, 0] = i
        current = np.minimum.accumulate(t - column, axis=1) + column
        active = long_lengths >= i
        previous[active] = current[active]

    return previous[np.arange(n), short_lengths]


def levenshtein_similarities_batch(
    lefts: Sequence[str], rights: Sequence[str]
) -> np.ndarray:
    """Normalized Levenshtein similarities of ``N`` string pairs.

    Matches :func:`levenshtein_similarity` exactly: the same integer
    distances divided by the same maximum lengths (two empty strings
    score 1.0).
    """
    distances = levenshtein_distances_batch(lefts, rights)
    max_lengths = np.maximum(
        np.fromiter((len(s) for s in lefts), dtype=np.int64, count=len(lefts)),
        np.fromiter((len(s) for s in rights), dtype=np.int64, count=len(rights)),
    )
    safe = np.maximum(max_lengths, 1)
    return np.where(max_lengths == 0, 1.0, 1.0 - distances / safe)


def levenshtein_similarity(left: str, right: str) -> float:
    """Normalized Levenshtein similarity in ``[0, 1]``."""
    if not left and not right:
        return 1.0
    distance = levenshtein_distance(left, right)
    return 1.0 - distance / max(len(left), len(right))


def jaro_similarity(left: str, right: str) -> float:
    """Jaro similarity in ``[0, 1]`` (Jaro 1989)."""
    if left == right:
        return 1.0
    if not left or not right:
        return 0.0
    match_window = max(len(left), len(right)) // 2 - 1
    match_window = max(match_window, 0)
    left_matched = [False] * len(left)
    right_matched = [False] * len(right)
    matches = 0
    for i, left_char in enumerate(left):
        start = max(0, i - match_window)
        end = min(i + match_window + 1, len(right))
        for j in range(start, end):
            if right_matched[j] or right[j] != left_char:
                continue
            left_matched[i] = True
            right_matched[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i, matched in enumerate(left_matched):
        if not matched:
            continue
        while not right_matched[j]:
            j += 1
        if left[i] != right[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    return (
        matches / len(left)
        + matches / len(right)
        + (matches - transpositions) / matches
    ) / 3.0


def _jaro_similarity_fast(left: str, right: str) -> float:
    """Jaro similarity via per-character position lists (exact fast path).

    The classic greedy matcher scans the right-hand window for every left
    character — ``O(|left| · window)``.  This implementation indexes the
    positions of every character of ``right`` once and walks each list
    with a monotone pointer, which is safe because the window start only
    moves forward: a position skipped for being past the window *end*
    stays available for later (larger) windows, so pointers only advance
    past positions that are matched or permanently behind the window.
    Greedy choices — and therefore matches, transpositions, and the final
    float value — are identical to :func:`jaro_similarity`.
    """
    if left == right:
        return 1.0
    if not left or not right:
        return 0.0
    match_window = max(len(left), len(right)) // 2 - 1
    match_window = max(match_window, 0)

    positions: dict[str, list[int]] = {}
    for j, char in enumerate(right):
        positions.setdefault(char, []).append(j)
    pointers = dict.fromkeys(positions, 0)

    left_matches: list[int] = []
    right_matched_positions: list[int] = []
    for i, left_char in enumerate(left):
        candidate_positions = positions.get(left_char)
        if candidate_positions is None:
            continue
        pointer = pointers[left_char]
        start = i - match_window
        end = i + match_window + 1
        while pointer < len(candidate_positions) and candidate_positions[pointer] < start:
            pointer += 1
        pointers[left_char] = pointer
        if pointer < len(candidate_positions) and candidate_positions[pointer] < end:
            left_matches.append(i)
            right_matched_positions.append(candidate_positions[pointer])
            pointers[left_char] = pointer + 1
    matches = len(left_matches)
    if matches == 0:
        return 0.0

    # Transpositions compare the matched characters in left order against
    # the matched right positions in increasing order, as in the classic
    # two-pointer sweep.
    transpositions = 0
    for i, j in zip(left_matches, sorted(right_matched_positions)):
        if left[i] != right[j]:
            transpositions += 1
    transpositions //= 2
    return (
        matches / len(left)
        + matches / len(right)
        + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(left: str, right: str, prefix_weight: float = 0.1) -> float:
    """Jaro-Winkler similarity boosting common prefixes (Jaro 1995)."""
    jaro = jaro_similarity(left, right)
    prefix_length = 0
    for left_char, right_char in zip(left, right):
        if left_char != right_char or prefix_length == 4:
            break
        prefix_length += 1
    return jaro + prefix_length * prefix_weight * (1.0 - jaro)


def jaro_winkler_similarity_fast(
    left: str, right: str, prefix_weight: float = 0.1
) -> float:
    """Jaro-Winkler via the fast exact Jaro (identical to the reference)."""
    jaro = _jaro_similarity_fast(left, right)
    prefix_length = 0
    for left_char, right_char in zip(left, right):
        if left_char != right_char or prefix_length == 4:
            break
        prefix_length += 1
    return jaro + prefix_length * prefix_weight * (1.0 - jaro)


def jaccard_similarity(left: set, right: set) -> float:
    """Jaccard similarity of two sets (used for the Set-Cat intent, Section 5.1)."""
    if not left and not right:
        return 1.0
    union = left | right
    if not union:
        return 1.0
    return len(left & right) / len(union)


def token_jaccard(left: str, right: str) -> float:
    """Jaccard similarity over word-token sets."""
    return jaccard_similarity(token_set(left), token_set(right))


def qgram_jaccard(left: str, right: str, n: int = 3) -> float:
    """Jaccard similarity over character n-gram sets."""
    return jaccard_similarity(set(char_ngrams(left, n)), set(char_ngrams(right, n)))


def overlap_coefficient(left: set, right: set) -> float:
    """Overlap coefficient ``|A ∩ B| / min(|A|, |B|)``."""
    if not left or not right:
        return 1.0 if not left and not right else 0.0
    return len(left & right) / min(len(left), len(right))


def dice_coefficient(left: set, right: set) -> float:
    """Sørensen-Dice coefficient of two sets."""
    if not left and not right:
        return 1.0
    total = len(left) + len(right)
    if total == 0:
        return 1.0
    return 2.0 * len(left & right) / total


def cosine_token_similarity(left: str, right: str) -> float:
    """Cosine similarity of bag-of-word token counts."""
    left_tokens = word_tokens(left)
    right_tokens = word_tokens(right)
    if not left_tokens and not right_tokens:
        return 1.0
    if not left_tokens or not right_tokens:
        return 0.0
    left_counts: dict[str, int] = {}
    right_counts: dict[str, int] = {}
    for token in left_tokens:
        left_counts[token] = left_counts.get(token, 0) + 1
    for token in right_tokens:
        right_counts[token] = right_counts.get(token, 0) + 1
    dot = sum(
        count * right_counts.get(token, 0) for token, count in left_counts.items()
    )
    left_norm = math.sqrt(sum(count * count for count in left_counts.values()))
    right_norm = math.sqrt(sum(count * count for count in right_counts.values()))
    if left_norm == 0 or right_norm == 0:
        return 0.0
    return dot / (left_norm * right_norm)


def monge_elkan_similarity(left: str, right: str) -> float:
    """Monge-Elkan similarity: average best Jaro-Winkler match per left token."""
    left_tokens = word_tokens(left)
    right_tokens = word_tokens(right)
    if not left_tokens or not right_tokens:
        return 1.0 if not left_tokens and not right_tokens else 0.0
    total = 0.0
    for left_token in left_tokens:
        total += max(
            jaro_winkler_similarity(left_token, right_token)
            for right_token in right_tokens
        )
    return total / len(left_tokens)


#: Named registry of pairwise string-similarity functions used by the
#: feature encoder; keys are stable feature names.
SIMILARITY_FUNCTIONS = {
    "levenshtein": levenshtein_similarity,
    "jaro_winkler": jaro_winkler_similarity,
    "token_jaccard": token_jaccard,
    "qgram_jaccard": qgram_jaccard,
    "cosine_tokens": cosine_token_similarity,
    "monge_elkan": monge_elkan_similarity,
}
