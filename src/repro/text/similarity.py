"""Classic string-similarity measures.

These measures play two roles in the reproduction: they provide the
hand-crafted features appended to the hashed pair representation of the
matcher (prior-art feature-based matchers, Section 2.1), and they back
several unit-level invariants (symmetry, boundedness) exercised by the
property-based tests.
"""

from __future__ import annotations

import math

from .ngrams import char_ngrams
from .tokenize import token_set, word_tokens


def levenshtein_distance(left: str, right: str) -> int:
    """Edit distance (insertions, deletions, substitutions) between two strings."""
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    if len(left) < len(right):
        left, right = right, left
    previous = list(range(len(right) + 1))
    for i, left_char in enumerate(left, start=1):
        current = [i]
        for j, right_char in enumerate(right, start=1):
            insert_cost = current[j - 1] + 1
            delete_cost = previous[j] + 1
            substitute_cost = previous[j - 1] + (left_char != right_char)
            current.append(min(insert_cost, delete_cost, substitute_cost))
        previous = current
    return previous[-1]


def levenshtein_similarity(left: str, right: str) -> float:
    """Normalized Levenshtein similarity in ``[0, 1]``."""
    if not left and not right:
        return 1.0
    distance = levenshtein_distance(left, right)
    return 1.0 - distance / max(len(left), len(right))


def jaro_similarity(left: str, right: str) -> float:
    """Jaro similarity in ``[0, 1]`` (Jaro 1989)."""
    if left == right:
        return 1.0
    if not left or not right:
        return 0.0
    match_window = max(len(left), len(right)) // 2 - 1
    match_window = max(match_window, 0)
    left_matched = [False] * len(left)
    right_matched = [False] * len(right)
    matches = 0
    for i, left_char in enumerate(left):
        start = max(0, i - match_window)
        end = min(i + match_window + 1, len(right))
        for j in range(start, end):
            if right_matched[j] or right[j] != left_char:
                continue
            left_matched[i] = True
            right_matched[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i, matched in enumerate(left_matched):
        if not matched:
            continue
        while not right_matched[j]:
            j += 1
        if left[i] != right[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    return (
        matches / len(left)
        + matches / len(right)
        + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(left: str, right: str, prefix_weight: float = 0.1) -> float:
    """Jaro-Winkler similarity boosting common prefixes (Jaro 1995)."""
    jaro = jaro_similarity(left, right)
    prefix_length = 0
    for left_char, right_char in zip(left, right):
        if left_char != right_char or prefix_length == 4:
            break
        prefix_length += 1
    return jaro + prefix_length * prefix_weight * (1.0 - jaro)


def jaccard_similarity(left: set, right: set) -> float:
    """Jaccard similarity of two sets (used for the Set-Cat intent, Section 5.1)."""
    if not left and not right:
        return 1.0
    union = left | right
    if not union:
        return 1.0
    return len(left & right) / len(union)


def token_jaccard(left: str, right: str) -> float:
    """Jaccard similarity over word-token sets."""
    return jaccard_similarity(token_set(left), token_set(right))


def qgram_jaccard(left: str, right: str, n: int = 3) -> float:
    """Jaccard similarity over character n-gram sets."""
    return jaccard_similarity(set(char_ngrams(left, n)), set(char_ngrams(right, n)))


def overlap_coefficient(left: set, right: set) -> float:
    """Overlap coefficient ``|A ∩ B| / min(|A|, |B|)``."""
    if not left or not right:
        return 1.0 if not left and not right else 0.0
    return len(left & right) / min(len(left), len(right))


def dice_coefficient(left: set, right: set) -> float:
    """Sørensen-Dice coefficient of two sets."""
    if not left and not right:
        return 1.0
    total = len(left) + len(right)
    if total == 0:
        return 1.0
    return 2.0 * len(left & right) / total


def cosine_token_similarity(left: str, right: str) -> float:
    """Cosine similarity of bag-of-word token counts."""
    left_tokens = word_tokens(left)
    right_tokens = word_tokens(right)
    if not left_tokens and not right_tokens:
        return 1.0
    if not left_tokens or not right_tokens:
        return 0.0
    left_counts: dict[str, int] = {}
    right_counts: dict[str, int] = {}
    for token in left_tokens:
        left_counts[token] = left_counts.get(token, 0) + 1
    for token in right_tokens:
        right_counts[token] = right_counts.get(token, 0) + 1
    dot = sum(
        count * right_counts.get(token, 0) for token, count in left_counts.items()
    )
    left_norm = math.sqrt(sum(count * count for count in left_counts.values()))
    right_norm = math.sqrt(sum(count * count for count in right_counts.values()))
    if left_norm == 0 or right_norm == 0:
        return 0.0
    return dot / (left_norm * right_norm)


def monge_elkan_similarity(left: str, right: str) -> float:
    """Monge-Elkan similarity: average best Jaro-Winkler match per left token."""
    left_tokens = word_tokens(left)
    right_tokens = word_tokens(right)
    if not left_tokens or not right_tokens:
        return 1.0 if not left_tokens and not right_tokens else 0.0
    total = 0.0
    for left_token in left_tokens:
        total += max(
            jaro_winkler_similarity(left_token, right_token)
            for right_token in right_tokens
        )
    return total / len(left_tokens)


#: Named registry of pairwise string-similarity functions used by the
#: feature encoder; keys are stable feature names.
SIMILARITY_FUNCTIONS = {
    "levenshtein": levenshtein_similarity,
    "jaro_winkler": jaro_winkler_similarity,
    "token_jaccard": token_jaccard,
    "qgram_jaccard": qgram_jaccard,
    "cosine_tokens": cosine_token_similarity,
    "monge_elkan": monge_elkan_similarity,
}
