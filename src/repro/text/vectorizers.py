"""Text vectorizers: hashed n-gram features and TF-IDF.

These vectorizers replace DITTO's pre-trained sub-word encoder in the
offline reproduction.  The hashing vectorizer maps character n-grams and
word tokens into a fixed-size feature space without a vocabulary pass,
which keeps per-intent matchers independent (each matcher learns its own
projection of the same raw features, mimicking separate fine-tuning runs).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np

from ..exceptions import ConfigurationError, NotFittedError
from .ngrams import char_ngrams
from .tokenize import normalize, word_tokens


def _stable_hash(token: str, salt: str = "") -> int:
    """Deterministic 64-bit hash of a token (stable across processes)."""
    digest = hashlib.blake2b(f"{salt}:{token}".encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


#: When false, bucket lookups recompute the digest on every occurrence —
#: the pre-optimization behaviour, restored by
#: :func:`repro.perf.compat.use_reference_implementations` so reference
#: timings do not silently benefit from the cache.
CACHE_BUCKETS = True


@dataclass(frozen=True)
class HashingVectorizerConfig:
    """Configuration of :class:`HashingVectorizer`."""

    n_features: int = 512
    char_ngram_sizes: tuple[int, ...] = (3, 4)
    use_word_tokens: bool = True
    signed: bool = True
    normalize: bool = True
    salt: str = ""

    def __post_init__(self) -> None:
        if self.n_features <= 0:
            raise ConfigurationError("n_features must be positive")
        if not self.char_ngram_sizes and not self.use_word_tokens:
            raise ConfigurationError(
                "at least one of char_ngram_sizes / use_word_tokens must be enabled"
            )
        if any(n <= 0 for n in self.char_ngram_sizes):
            raise ConfigurationError("char n-gram sizes must be positive")


class HashingVectorizer:
    """Stateless feature hashing of character n-grams and word tokens.

    Tokens are hashed into ``n_features`` buckets; the sign of a second
    hash reduces collisions' bias (signed hashing trick).  No fitting is
    required, so the vectorizer can encode unseen text deterministically.
    """

    #: Entry caps of the memoization caches; each cache is cleared when
    #: it exceeds its bound (unbounded growth would leak on streams of
    #: unique texts).  Cleared entries are recomputed deterministically.
    TEXT_CACHE_MAX_ENTRIES = 65536
    BUCKET_CACHE_MAX_ENTRIES = 1 << 20

    def __init__(self, config: HashingVectorizerConfig | None = None) -> None:
        self.config = config or HashingVectorizerConfig()
        # token -> (bucket index, sign); blake2b digests are the dominant
        # cost of hashing, and real corpora reuse tokens heavily across
        # records and pairs, so each distinct token is digested once per
        # vectorizer lifetime.
        self._bucket_cache: dict[str, tuple[int, float]] = {}
        # text -> (bucket indices, signs) arrays; texts recur across
        # batches (record texts in every encode, train-pair texts in the
        # representation pass), and a cached text skips tokenization and
        # the per-token loop entirely.
        self._text_cache: dict[str, tuple[np.ndarray, np.ndarray]] = {}

    def _tokens(self, text: str) -> list[str]:
        tokens: list[str] = []
        for size in self.config.char_ngram_sizes:
            tokens.extend(f"c{size}:{gram}" for gram in char_ngrams(text, size))
        if self.config.use_word_tokens:
            tokens.extend(f"w:{token}" for token in word_tokens(text))
        return tokens

    def _bucket(self, token: str) -> tuple[int, float]:
        """Bucket index and sign of ``token`` (memoized)."""
        if not CACHE_BUCKETS:
            return self._bucket_uncached(token)
        cached = self._bucket_cache.get(token)
        if cached is None:
            cached = self._bucket_uncached(token)
            self._bucket_cache[token] = cached
        return cached

    def _bucket_uncached(self, token: str) -> tuple[int, float]:
        hashed = _stable_hash(token, self.config.salt)
        index = hashed % self.config.n_features
        if self.config.signed:
            sign = 1.0 if (hashed >> 32) % 2 == 0 else -1.0
        else:
            sign = 1.0
        return (index, sign)

    def transform_one(self, text: str) -> np.ndarray:
        """Encode a single string into a dense feature vector."""
        vector = np.zeros(self.config.n_features, dtype=np.float64)
        for token in self._tokens(text):
            index, sign = self._bucket(token)
            vector[index] += sign
        if self.config.normalize:
            norm = np.linalg.norm(vector)
            if norm > 0:
                vector /= norm
        return vector

    def transform(self, texts: Iterable[str]) -> np.ndarray:
        """Encode a sequence of strings into a ``(n, n_features)`` matrix.

        The batch is encoded through a CSR-style intermediate — a flat
        ``(bucket, sign)`` stream plus per-text offsets — and a single
        scatter-add, so per-text Python work is limited to tokenization.
        Each row is bit-identical to :meth:`transform_one` of the same
        text: bucket contributions are ±1 integers whose float64 sums are
        exact in any order.
        """
        texts = list(texts)
        if not texts:
            return np.zeros((0, self.config.n_features), dtype=np.float64)
        caching = CACHE_BUCKETS
        if caching and len(self._text_cache) > self.TEXT_CACHE_MAX_ENTRIES:
            self._text_cache.clear()
        if caching and len(self._bucket_cache) > self.BUCKET_CACHE_MAX_ENTRIES:
            self._bucket_cache.clear()
        index_blocks: list[np.ndarray] = []
        sign_blocks: list[np.ndarray] = []
        lengths = np.zeros(len(texts), dtype=np.int64)
        for row, text in enumerate(texts):
            cached = self._text_cache.get(text) if caching else None
            if cached is None:
                cached = self._text_buckets(text)
                if caching:
                    self._text_cache[text] = cached
            lengths[row] = cached[0].size
            index_blocks.append(cached[0])
            sign_blocks.append(cached[1])
        matrix = np.zeros((len(texts), self.config.n_features), dtype=np.float64)
        if int(lengths.sum()):
            rows = np.repeat(np.arange(len(texts), dtype=np.int64), lengths)
            np.add.at(
                matrix,
                (rows, np.concatenate(index_blocks)),
                np.concatenate(sign_blocks),
            )
        if self.config.normalize:
            norms = np.linalg.norm(matrix, axis=1, keepdims=True)
            np.divide(matrix, norms, out=matrix, where=norms > 0)
        return matrix

    def _text_buckets(self, text: str) -> tuple[np.ndarray, np.ndarray]:
        """Bucket index and sign arrays of one text's token stream.

        Equivalent to bucketing :meth:`_tokens` one by one, but the text
        is normalized once for all n-gram sizes and cache keys are
        ``(prefix, gram)`` tuples, so the prefixed token string is only
        materialized on a cache miss (for the digest).
        """
        config = self.config
        cache = self._bucket_cache
        caching = CACHE_BUCKETS
        normalized = normalize(text) if config.char_ngram_sizes else ""
        keys: list[tuple[str, str]] = []
        for size in config.char_ngram_sizes:
            prefix = f"c{size}:"
            if len(normalized) < size:
                if normalized:
                    keys.append((prefix, normalized))
                continue
            keys.extend(
                (prefix, normalized[i : i + size])
                for i in range(len(normalized) - size + 1)
            )
        if config.use_word_tokens:
            keys.extend(("w:", token) for token in word_tokens(text))

        indices = np.empty(len(keys), dtype=np.int64)
        signs = np.empty(len(keys), dtype=np.float64)
        for position, key in enumerate(keys):
            cached = cache.get(key) if caching else None
            if cached is None:
                cached = self._bucket_uncached(key[0] + key[1])
                if caching:
                    cache[key] = cached
            indices[position] = cached[0]
            signs[position] = cached[1]
        return indices, signs


class TfidfVectorizer:
    """A small TF-IDF vectorizer over word tokens.

    Used by examples and the token blocker; fitting learns the vocabulary
    and inverse document frequencies, transforming produces L2-normalized
    dense vectors.
    """

    def __init__(self, min_df: int = 1, max_features: int | None = None) -> None:
        if min_df < 1:
            raise ConfigurationError("min_df must be at least 1")
        if max_features is not None and max_features <= 0:
            raise ConfigurationError("max_features must be positive when given")
        self.min_df = min_df
        self.max_features = max_features
        self.vocabulary_: dict[str, int] | None = None
        self.idf_: np.ndarray | None = None

    def fit(self, texts: Sequence[str]) -> "TfidfVectorizer":
        """Learn the vocabulary and IDF weights from ``texts``."""
        document_frequency: dict[str, int] = {}
        for text in texts:
            for token in set(word_tokens(text)):
                document_frequency[token] = document_frequency.get(token, 0) + 1
        items = [
            (token, count)
            for token, count in document_frequency.items()
            if count >= self.min_df
        ]
        items.sort(key=lambda item: (-item[1], item[0]))
        if self.max_features is not None:
            items = items[: self.max_features]
        kept_tokens = sorted(token for token, _ in items)
        self.vocabulary_ = {token: idx for idx, token in enumerate(kept_tokens)}
        n_documents = max(len(texts), 1)
        idf = np.zeros(len(self.vocabulary_), dtype=np.float64)
        for token, idx in self.vocabulary_.items():
            idf[idx] = np.log((1 + n_documents) / (1 + document_frequency[token])) + 1.0
        self.idf_ = idf
        return self

    def transform(self, texts: Sequence[str]) -> np.ndarray:
        """Encode ``texts`` into an L2-normalized TF-IDF matrix."""
        if self.vocabulary_ is None or self.idf_ is None:
            raise NotFittedError("TfidfVectorizer must be fitted before transform")
        matrix = np.zeros((len(texts), len(self.vocabulary_)), dtype=np.float64)
        for row, text in enumerate(texts):
            for token in word_tokens(text):
                index = self.vocabulary_.get(token)
                if index is not None:
                    matrix[row, index] += 1.0
        matrix *= self.idf_[np.newaxis, :] if matrix.shape[1] else 1.0
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        return matrix / norms

    def fit_transform(self, texts: Sequence[str]) -> np.ndarray:
        """Fit on ``texts`` and return their TF-IDF matrix."""
        return self.fit(texts).transform(texts)
