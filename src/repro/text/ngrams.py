"""Character and word n-gram extraction.

Q-grams are the backbone of the blocking phase used by the paper (pairs
sharing at least one 4-gram survive blocking) and of the hashed feature
encoder that substitutes DITTO's sub-word tokenizer.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

from .tokenize import normalize, word_tokens


def char_ngrams(text: str, n: int = 4, pad: bool = False) -> list[str]:
    """Return overlapping character ``n``-grams of the normalized text.

    Parameters
    ----------
    text:
        Input string; normalization lowercases and strips punctuation.
    n:
        Gram length; must be positive.
    pad:
        When true, the text is padded with ``n - 1`` boundary markers
        (``#``) on both sides so short strings still produce grams.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    normalized = normalize(text)
    if pad:
        padding = "#" * (n - 1)
        normalized = f"{padding}{normalized}{padding}"
    if len(normalized) < n:
        return [normalized] if normalized else []
    return [normalized[i : i + n] for i in range(len(normalized) - n + 1)]


def word_ngrams(text: str, n: int = 2) -> list[str]:
    """Return overlapping word ``n``-grams of the text."""
    if n <= 0:
        raise ValueError("n must be positive")
    tokens = word_tokens(text)
    if len(tokens) < n:
        return [" ".join(tokens)] if tokens else []
    return [" ".join(tokens[i : i + n]) for i in range(len(tokens) - n + 1)]


def ngram_profile(texts: Iterable[str], n: int = 4) -> Counter:
    """Count character n-grams over a corpus (useful for blocking statistics)."""
    counter: Counter = Counter()
    for text in texts:
        counter.update(char_ngrams(text, n))
    return counter


def shared_ngrams(left: str, right: str, n: int = 4) -> set[str]:
    """The set of character n-grams shared by two strings."""
    return set(char_ngrams(left, n)) & set(char_ngrams(right, n))
