"""Component-spec normalization (shared leaf module).

Both :mod:`repro.config` (which stores component specs) and
:mod:`repro.registry` (which builds components from them) need the same
canonicalization, and the two sit on opposite sides of the import graph
— so the normalizer lives here, importing nothing but the exception
hierarchy.  See :mod:`repro.registry.core` for the spec contract.
"""

from __future__ import annotations

from collections.abc import Mapping

from .exceptions import RegistryError

#: Canonical spec keys.
SPEC_TYPE_KEY = "type"
SPEC_PARAMS_KEY = "params"


def plain_value(value: object, context: str) -> object:
    """Recursively coerce a spec parameter into JSON-plain form."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Mapping):
        return {str(key): plain_value(item, context) for key, item in value.items()}
    if isinstance(value, (set, frozenset)):
        return sorted(plain_value(item, context) for item in value)
    if isinstance(value, (list, tuple)):
        return [plain_value(item, context) for item in value]
    raise RegistryError(
        f"{context}: spec parameters must be JSON-plain "
        f"(str/int/float/bool/None/list/dict), got {type(value).__name__}"
    )


def normalize_spec(spec: object, context: str = "component spec") -> dict[str, object]:
    """Normalize a spec to the canonical ``{"type": ..., "params": {...}}`` form.

    Accepts a bare string key, a flat mapping (``{"type": "qgram",
    "q": 3}``), or the canonical nested form.  The result contains only
    JSON-plain values, making it deterministic under
    :func:`repro.pipeline.canonical_json` fingerprinting.
    """
    if isinstance(spec, str):
        if not spec:
            raise RegistryError(f"{context}: component key must be a non-empty string")
        return {SPEC_TYPE_KEY: spec, SPEC_PARAMS_KEY: {}}
    if isinstance(spec, Mapping):
        mapping = dict(spec)
        key = mapping.pop(SPEC_TYPE_KEY, None)
        if not isinstance(key, str) or not key:
            raise RegistryError(f"{context}: spec mapping requires a non-empty 'type' string")
        params = mapping.pop(SPEC_PARAMS_KEY, None)
        if params is None:
            params = mapping
        elif mapping:
            extra = ", ".join(sorted(mapping))
            raise RegistryError(
                f"{context}: spec mixes a 'params' mapping with flat parameters ({extra})"
            )
        if not isinstance(params, Mapping):
            raise RegistryError(f"{context}: spec 'params' must be a mapping")
        plain = {str(name): plain_value(value, context) for name, value in params.items()}
        return {SPEC_TYPE_KEY: key, SPEC_PARAMS_KEY: plain}
    raise RegistryError(
        f"{context}: spec must be a string key or a mapping, got {type(spec).__name__}"
    )
