"""Candidate record pairs and multi-intent labels.

The matching phase of entity resolution operates on a *candidate set*
``C ⊆ D × D`` produced by blocking.  For MIER each candidate pair carries
one binary label per intent.  This module provides the immutable pair
value type, the labeled multi-intent pair, and the :class:`CandidateSet`
container used throughout the library.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..exceptions import DataError, LabelingError
from .records import Dataset, Record


@dataclass(frozen=True, order=True)
class RecordPair:
    """An unordered candidate pair ``(r_i, r_j)`` identified by record ids.

    The pair is canonicalized so that ``left_id <= right_id``; two pairs
    built from the same records in either order compare equal.
    """

    left_id: str
    right_id: str

    def __post_init__(self) -> None:
        if not self.left_id or not self.right_id:
            raise DataError("pair record ids must be non-empty")
        if self.left_id == self.right_id:
            raise DataError(f"a pair cannot relate a record to itself: {self.left_id!r}")
        if self.left_id > self.right_id:
            left, right = self.right_id, self.left_id
            object.__setattr__(self, "left_id", left)
            object.__setattr__(self, "right_id", right)

    @classmethod
    def of(cls, left: Record | str, right: Record | str) -> "RecordPair":
        """Build a pair from records or record ids."""
        left_id = left.record_id if isinstance(left, Record) else left
        right_id = right.record_id if isinstance(right, Record) else right
        return cls(left_id, right_id)

    def as_tuple(self) -> tuple[str, str]:
        """Return the canonical ``(left_id, right_id)`` tuple."""
        return (self.left_id, self.right_id)

    def other(self, record_id: str) -> str:
        """Return the id of the pair member that is not ``record_id``."""
        if record_id == self.left_id:
            return self.right_id
        if record_id == self.right_id:
            return self.left_id
        raise DataError(f"record {record_id!r} is not part of pair {self.as_tuple()}")


@dataclass(frozen=True)
class LabeledPair:
    """A candidate pair together with its per-intent binary labels."""

    pair: RecordPair
    labels: Mapping[str, int]

    def __post_init__(self) -> None:
        normalized: dict[str, int] = {}
        for intent, value in dict(self.labels).items():
            if value not in (0, 1):
                raise LabelingError(
                    f"label for intent {intent!r} must be 0 or 1, got {value!r}"
                )
            normalized[intent] = int(value)
        object.__setattr__(self, "labels", normalized)

    def label(self, intent: str) -> int:
        """Return the binary label of ``intent``."""
        try:
            return self.labels[intent]
        except KeyError:
            raise LabelingError(
                f"pair {self.pair.as_tuple()} has no label for intent {intent!r}"
            ) from None

    @property
    def intents(self) -> tuple[str, ...]:
        """Intent names labeled on this pair."""
        return tuple(self.labels)


class CandidateSet:
    """An ordered set of labeled candidate pairs over a dataset.

    The candidate set is the unit of work for matchers, graph
    construction, and evaluation.  Pair order is stable, pairs are unique,
    and every pair is labeled for the same set of intents.
    """

    def __init__(
        self,
        dataset: Dataset,
        pairs: Iterable[LabeledPair] = (),
        intents: Sequence[str] | None = None,
    ) -> None:
        self.dataset = dataset
        self._pairs: list[LabeledPair] = []
        self._index: dict[RecordPair, int] = {}
        self._intents: tuple[str, ...] | None = tuple(intents) if intents else None
        for labeled in pairs:
            self.add(labeled)

    def add(self, labeled: LabeledPair) -> None:
        """Append a labeled pair, validating uniqueness, membership, and intents."""
        pair = labeled.pair
        if pair in self._index:
            raise DataError(f"duplicate candidate pair: {pair.as_tuple()}")
        if pair.left_id not in self.dataset or pair.right_id not in self.dataset:
            raise DataError(
                f"pair {pair.as_tuple()} references records outside the dataset"
            )
        if self._intents is None:
            self._intents = labeled.intents
        elif set(labeled.intents) != set(self._intents):
            raise LabelingError(
                f"pair {pair.as_tuple()} is labeled for intents {labeled.intents}, "
                f"expected {self._intents}"
            )
        self._index[pair] = len(self._pairs)
        self._pairs.append(labeled)

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[LabeledPair]:
        return iter(self._pairs)

    def __contains__(self, pair: RecordPair) -> bool:
        return pair in self._index

    def __getitem__(self, index: int) -> LabeledPair:
        return self._pairs[index]

    @property
    def intents(self) -> tuple[str, ...]:
        """Intent names labeled on this candidate set (empty if no pairs)."""
        return self._intents or ()

    @property
    def pairs(self) -> list[RecordPair]:
        """The candidate pairs, in insertion order."""
        return [labeled.pair for labeled in self._pairs]

    def index_of(self, pair: RecordPair) -> int:
        """Return the position of ``pair`` in the candidate set."""
        try:
            return self._index[pair]
        except KeyError:
            raise DataError(f"pair {pair.as_tuple()} is not in the candidate set") from None

    def records_of(self, pair: RecordPair) -> tuple[Record, Record]:
        """Return the two :class:`Record` objects of a candidate pair."""
        return self.dataset[pair.left_id], self.dataset[pair.right_id]

    def labels(self, intent: str) -> np.ndarray:
        """Return the binary label vector for ``intent`` (shape ``(|C|,)``)."""
        if intent not in self.intents:
            raise LabelingError(f"unknown intent: {intent!r}")
        return np.array([labeled.label(intent) for labeled in self._pairs], dtype=np.int64)

    def label_matrix(self, intents: Sequence[str] | None = None) -> np.ndarray:
        """Return the label matrix of shape ``(|C|, P)`` for ``intents``."""
        names = list(intents) if intents is not None else list(self.intents)
        columns = [self.labels(name) for name in names]
        if not columns:
            return np.zeros((len(self._pairs), 0), dtype=np.int64)
        return np.stack(columns, axis=1)

    def positive_rate(self, intent: str) -> float:
        """Fraction of pairs labeled positive for ``intent`` (Table 4)."""
        if not self._pairs:
            return 0.0
        return float(self.labels(intent).mean())

    def positive_pairs(self, intent: str) -> set[RecordPair]:
        """The golden-standard resolution ``M*`` for ``intent`` (Eq. 6)."""
        return {
            labeled.pair for labeled in self._pairs if labeled.label(intent) == 1
        }

    def subset(self, indices: Sequence[int]) -> "CandidateSet":
        """Return a new candidate set with the pairs at ``indices``."""
        subset = CandidateSet(self.dataset, intents=self._intents)
        for index in indices:
            subset.add(self._pairs[index])
        return subset

    def describe(self) -> dict[str, object]:
        """Summary statistics: pair count, intents, and positive rates."""
        return {
            "num_pairs": len(self._pairs),
            "intents": list(self.intents),
            "positive_rates": {
                intent: self.positive_rate(intent) for intent in self.intents
            },
        }
