"""Record and dataset model.

A :class:`Record` is a flat mapping of attribute names to (possibly null)
string values plus a unique identifier.  A :class:`Dataset` is an ordered
collection of records sharing an attribute schema, optionally partitioned
into *sources* to model clean-clean resolution (two duplicate-free
sources, as in the Walmart-Amazon benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator, Mapping

from ..exceptions import DataError, SchemaError, UnknownRecordError


@dataclass(frozen=True)
class Record:
    """A single data record (tuple).

    Attributes
    ----------
    record_id:
        Unique identifier within a dataset (the ``rid`` of the paper).
    values:
        Mapping from attribute name to string value; ``None`` models a
        null value.
    source:
        Optional source tag for clean-clean scenarios (e.g. ``"walmart"``
        vs ``"amazon"``); records from the same source are never matched.
    """

    record_id: str
    values: Mapping[str, str | None]
    source: str | None = None

    def __post_init__(self) -> None:
        if not self.record_id:
            raise DataError("record_id must be a non-empty string")
        object.__setattr__(self, "values", dict(self.values))

    def get(self, attribute: str, default: str | None = None) -> str | None:
        """Return the value of ``attribute`` or ``default`` when absent/null."""
        value = self.values.get(attribute, default)
        return default if value is None else value

    def text(self, attributes: Iterable[str] | None = None, sep: str = " ") -> str:
        """Concatenate attribute values into a single text string.

        Parameters
        ----------
        attributes:
            Attributes to include, in order.  Defaults to all attributes
            in insertion order.
        sep:
            Separator between attribute values.
        """
        names = list(attributes) if attributes is not None else list(self.values)
        parts = [self.values.get(name) or "" for name in names]
        return sep.join(part for part in parts if part)

    @property
    def attributes(self) -> tuple[str, ...]:
        """Attribute names present on this record."""
        return tuple(self.values)


@dataclass
class Dataset:
    """An ordered collection of records with a shared schema.

    Parameters
    ----------
    records:
        The records of the dataset.  Identifiers must be unique.
    name:
        Human-readable dataset name (used in reports).
    attributes:
        The schema.  When omitted it is inferred as the union of record
        attributes, in first-seen order.
    """

    records: list[Record] = field(default_factory=list)
    name: str = "dataset"
    attributes: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        self._by_id: dict[str, Record] = {}
        inferred: list[str] = []
        seen_attrs: set[str] = set()
        for record in self.records:
            if record.record_id in self._by_id:
                raise DataError(f"duplicate record_id: {record.record_id!r}")
            self._by_id[record.record_id] = record
            for attribute in record.attributes:
                if attribute not in seen_attrs:
                    seen_attrs.add(attribute)
                    inferred.append(attribute)
        if self.attributes is None:
            self.attributes = tuple(inferred)
        else:
            self.attributes = tuple(self.attributes)
            for record in self.records:
                unknown = set(record.attributes) - set(self.attributes)
                if unknown:
                    raise SchemaError(
                        f"record {record.record_id!r} has attributes outside the "
                        f"schema: {sorted(unknown)}"
                    )

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self.records)

    def __contains__(self, record_id: str) -> bool:
        return record_id in self._by_id

    def __getitem__(self, record_id: str) -> Record:
        try:
            return self._by_id[record_id]
        except KeyError:
            raise UnknownRecordError(f"unknown record_id: {record_id!r}") from None

    def add(self, record: Record) -> None:
        """Append a record, enforcing identifier uniqueness and the schema."""
        if record.record_id in self._by_id:
            raise DataError(f"duplicate record_id: {record.record_id!r}")
        if self.attributes:
            unknown = set(record.attributes) - set(self.attributes)
            if unknown:
                raise SchemaError(
                    f"record {record.record_id!r} has attributes outside the "
                    f"schema: {sorted(unknown)}"
                )
        self.records.append(record)
        self._by_id[record.record_id] = record

    @property
    def record_ids(self) -> list[str]:
        """Identifiers of all records, in dataset order."""
        return [record.record_id for record in self.records]

    @property
    def sources(self) -> tuple[str, ...]:
        """Distinct source tags present in the dataset (sorted)."""
        return tuple(sorted({r.source for r in self.records if r.source is not None}))

    def by_source(self, source: str) -> list[Record]:
        """Return all records belonging to ``source``."""
        return [record for record in self.records if record.source == source]

    def texts(self, attributes: Iterable[str] | None = None) -> list[str]:
        """Return the textual form of every record (see :meth:`Record.text`)."""
        names = list(attributes) if attributes is not None else None
        return [record.text(names) for record in self.records]

    def subset(self, record_ids: Iterable[str], name: str | None = None) -> "Dataset":
        """Return a new dataset containing only ``record_ids`` (in given order)."""
        subset_records = [self[record_id] for record_id in record_ids]
        return Dataset(
            records=subset_records,
            name=name or f"{self.name}-subset",
            attributes=self.attributes,
        )

    def describe(self) -> dict[str, object]:
        """Summary statistics used for benchmark profiling (Section 5.1)."""
        null_count = sum(
            1
            for record in self.records
            for attribute in (self.attributes or ())
            if record.values.get(attribute) is None
        )
        total_cells = len(self.records) * len(self.attributes or ())
        token_lengths = [len(record.text().split()) for record in self.records]
        avg_tokens = sum(token_lengths) / len(token_lengths) if token_lengths else 0.0
        return {
            "name": self.name,
            "num_records": len(self.records),
            "num_attributes": len(self.attributes or ()),
            "sources": list(self.sources),
            "sparsity": (null_count / total_cells) if total_cells else 0.0,
            "avg_tokens_per_record": avg_tokens,
        }
