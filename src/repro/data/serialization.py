"""DITTO-style serialization of records and record pairs.

DITTO (Example 2.2 of the paper) serializes a record pair into a single
token sequence of the form::

    [CLS] COL title VAL nike men's ... [SEP] COL title VAL nike men ... [SEP]

and feeds it to a transformer.  Our matcher consumes the same serialized
text through a hashed n-gram encoder, so the serialization format is the
shared contract between the data layer and the matching layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from .pairs import RecordPair
from .records import Dataset, Record

CLS_TOKEN = "[CLS]"
SEP_TOKEN = "[SEP]"
COL_TOKEN = "COL"
VAL_TOKEN = "VAL"


@dataclass(frozen=True)
class SerializationConfig:
    """Controls which attributes are serialized and how long the output may be.

    Attributes
    ----------
    attributes:
        Attributes to serialize, in order.  ``None`` serializes every
        attribute of the dataset schema.  The paper uses only the product
        title for matching (Section 5.1).
    max_tokens:
        Hard cap on the number of whitespace tokens of the serialized
        pair (DITTO uses 512 sub-word tokens).
    lowercase:
        Whether to lowercase values before serialization.
    """

    attributes: tuple[str, ...] | None = None
    max_tokens: int = 256
    lowercase: bool = True


def serialize_record(
    record: Record,
    attributes: Sequence[str] | None = None,
    lowercase: bool = True,
) -> str:
    """Serialize a single record into ``COL a VAL v`` segments."""
    names: Iterable[str] = attributes if attributes is not None else record.attributes
    parts: list[str] = []
    for name in names:
        value = record.values.get(name)
        if value is None:
            continue
        text = value.lower() if lowercase else value
        parts.append(f"{COL_TOKEN} {name} {VAL_TOKEN} {text}")
    return " ".join(parts)


def serialize_pair(
    left: Record,
    right: Record,
    config: SerializationConfig | None = None,
) -> str:
    """Serialize a record pair into a single DITTO-style string."""
    config = config or SerializationConfig()
    left_text = serialize_record(left, config.attributes, config.lowercase)
    right_text = serialize_record(right, config.attributes, config.lowercase)
    serialized = f"{CLS_TOKEN} {left_text} {SEP_TOKEN} {right_text} {SEP_TOKEN}"
    tokens = serialized.split()
    if len(tokens) > config.max_tokens:
        tokens = tokens[: config.max_tokens]
        if tokens[-1] != SEP_TOKEN:
            tokens.append(SEP_TOKEN)
        serialized = " ".join(tokens)
    return serialized


def serialize_candidates(
    dataset: Dataset,
    pairs: Sequence[RecordPair],
    config: SerializationConfig | None = None,
) -> list[str]:
    """Serialize every pair of ``pairs`` against ``dataset``."""
    config = config or SerializationConfig()
    serialized = []
    for pair in pairs:
        left = dataset[pair.left_id]
        right = dataset[pair.right_id]
        serialized.append(serialize_pair(left, right, config))
    return serialized
