"""DITTO-style serialization of records, pairs, and pipeline artifacts.

DITTO (Example 2.2 of the paper) serializes a record pair into a single
token sequence of the form::

    [CLS] COL title VAL nike men's ... [SEP] COL title VAL nike men ... [SEP]

and feeds it to a transformer.  Our matcher consumes the same serialized
text through a hashed n-gram encoder, so the serialization format is the
shared contract between the data layer and the matching layer.  The same
serialized text doubles as the canonical byte representation used to
fingerprint candidate data for the pipeline's content-addressed artifact
cache (:mod:`repro.pipeline`).

The module also provides the on-disk artifact format of that cache:
:func:`write_artifact` / :func:`read_artifact` persist a mapping of numpy
arrays plus a JSON metadata document as a single ``.npz`` file, written
atomically and loaded with ``allow_pickle=False``.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from ..exceptions import DataError
from .pairs import RecordPair
from .records import Dataset, Record

CLS_TOKEN = "[CLS]"
SEP_TOKEN = "[SEP]"
COL_TOKEN = "COL"
VAL_TOKEN = "VAL"


@dataclass(frozen=True)
class SerializationConfig:
    """Controls which attributes are serialized and how long the output may be.

    Attributes
    ----------
    attributes:
        Attributes to serialize, in order.  ``None`` serializes every
        attribute of the dataset schema.  The paper uses only the product
        title for matching (Section 5.1).
    max_tokens:
        Hard cap on the number of whitespace tokens of the serialized
        pair (DITTO uses 512 sub-word tokens).
    lowercase:
        Whether to lowercase values before serialization.
    """

    attributes: tuple[str, ...] | None = None
    max_tokens: int = 256
    lowercase: bool = True


def serialize_record(
    record: Record,
    attributes: Sequence[str] | None = None,
    lowercase: bool = True,
) -> str:
    """Serialize a single record into ``COL a VAL v`` segments."""
    names: Iterable[str] = attributes if attributes is not None else record.attributes
    parts: list[str] = []
    for name in names:
        value = record.values.get(name)
        if value is None:
            continue
        text = value.lower() if lowercase else value
        parts.append(f"{COL_TOKEN} {name} {VAL_TOKEN} {text}")
    return " ".join(parts)


def serialize_pair_from_texts(
    left_text: str,
    right_text: str,
    config: SerializationConfig | None = None,
) -> str:
    """Assemble the DITTO pair string from pre-serialized record texts.

    Split out of :func:`serialize_pair` so batched encoders can memoize
    :func:`serialize_record` per record and still produce byte-identical
    pair serializations.
    """
    config = config or SerializationConfig()
    serialized = f"{CLS_TOKEN} {left_text} {SEP_TOKEN} {right_text} {SEP_TOKEN}"
    tokens = serialized.split()
    if len(tokens) > config.max_tokens:
        tokens = tokens[: config.max_tokens]
        if tokens[-1] != SEP_TOKEN:
            tokens.append(SEP_TOKEN)
        serialized = " ".join(tokens)
    return serialized


def serialize_pair(
    left: Record,
    right: Record,
    config: SerializationConfig | None = None,
) -> str:
    """Serialize a record pair into a single DITTO-style string."""
    config = config or SerializationConfig()
    left_text = serialize_record(left, config.attributes, config.lowercase)
    right_text = serialize_record(right, config.attributes, config.lowercase)
    return serialize_pair_from_texts(left_text, right_text, config)


def serialize_candidates(
    dataset: Dataset,
    pairs: Sequence[RecordPair],
    config: SerializationConfig | None = None,
) -> list[str]:
    """Serialize every pair of ``pairs`` against ``dataset``."""
    config = config or SerializationConfig()
    serialized = []
    for pair in pairs:
        left = dataset[pair.left_id]
        right = dataset[pair.right_id]
        serialized.append(serialize_pair(left, right, config))
    return serialized


# --------------------------------------------------------------- artifacts

#: Version of the on-disk artifact container format.  Bump when the
#: container layout changes incompatibly; readers refuse artifacts
#: written by a *newer* format with a clear error instead of failing
#: deep inside ``np.load`` or on a missing array key.
ARTIFACT_SCHEMA_VERSION = 1

#: Metadata field carrying the artifact schema version.
SCHEMA_VERSION_KEY = "__artifact_schema__"

#: Reserved ``.npz`` entry holding the JSON metadata of an artifact.
METADATA_KEY = "__artifact_metadata__"

#: Namespace prefix applied to array keys inside the ``.npz`` container,
#: so user-chosen keys can be arbitrary strings (``file`` would otherwise
#: collide with ``np.savez``'s positional parameter).
_ARRAY_PREFIX = "array::"

#: File extension of persisted artifacts.
ARTIFACT_SUFFIX = ".npz"


def write_artifact(
    path: str | Path,
    arrays: Mapping[str, np.ndarray],
    metadata: Mapping[str, object] | None = None,
) -> Path:
    """Persist named arrays plus JSON metadata as one ``.npz`` artifact.

    The file is written atomically (temp file + rename) so concurrent
    readers — e.g. parallel benchmark runs sharing a cache directory —
    never observe a partially written artifact.

    Parameters
    ----------
    path:
        Target file path; the ``.npz`` suffix is appended when missing.
    arrays:
        Arrays to store.  Keys may be arbitrary strings except the
        reserved :data:`METADATA_KEY`.
    metadata:
        JSON-serializable metadata stored alongside the arrays.
    """
    path = Path(path)
    if path.suffix != ARTIFACT_SUFFIX:
        path = path.with_name(path.name + ARTIFACT_SUFFIX)
    if METADATA_KEY in arrays:
        raise DataError(f"array key {METADATA_KEY!r} is reserved for metadata")
    document_fields = dict(metadata or {})
    if SCHEMA_VERSION_KEY in document_fields:
        raise DataError(f"metadata key {SCHEMA_VERSION_KEY!r} is reserved")
    document_fields[SCHEMA_VERSION_KEY] = ARTIFACT_SCHEMA_VERSION
    document = json.dumps(document_fields, sort_keys=True).encode("utf-8")
    payload: dict[str, np.ndarray] = {
        f"{_ARRAY_PREFIX}{key}": np.ascontiguousarray(value)
        for key, value in arrays.items()
    }
    payload[METADATA_KEY] = np.frombuffer(document, dtype=np.uint8)
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.stem, suffix=ARTIFACT_SUFFIX
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            np.savez(handle, **payload)
        os.replace(temp_name, path)
    except BaseException:
        if os.path.exists(temp_name):
            os.unlink(temp_name)
        raise
    return path


def check_artifact_schema(version: object, path: str | Path) -> None:
    """Validate an artifact's schema version against this build's reader.

    Artifacts written before versioning (no version field) are treated as
    version 1.  Artifacts written by a *newer* format raise a clear
    :class:`DataError` instead of an opaque failure on a missing or
    re-shaped entry further down the line.
    """
    if version is None:
        return
    if not isinstance(version, int) or isinstance(version, bool):
        raise DataError(
            f"artifact {path} carries a malformed schema version {version!r}"
        )
    if version > ARTIFACT_SCHEMA_VERSION:
        raise DataError(
            f"artifact {path} was written with schema version {version}, but this "
            f"build reads versions up to {ARTIFACT_SCHEMA_VERSION}; upgrade the "
            f"repro library (or re-create the artifact) to use it"
        )


def read_artifact(path: str | Path) -> tuple[dict[str, np.ndarray], dict[str, object]]:
    """Load an artifact written by :func:`write_artifact`.

    Returns the ``(arrays, metadata)`` pair.  Raises :class:`DataError`
    when the file is not a valid artifact or was written by a newer
    artifact schema than this build can read (forward-compat check).
    """
    path = Path(path)
    if path.suffix != ARTIFACT_SUFFIX:
        path = path.with_name(path.name + ARTIFACT_SUFFIX)
    try:
        with np.load(path, allow_pickle=False) as data:
            if METADATA_KEY not in data.files:
                raise DataError(f"{path} is not a pipeline artifact (missing metadata)")
            metadata = json.loads(bytes(data[METADATA_KEY].tobytes()).decode("utf-8"))
            arrays = {
                key[len(_ARRAY_PREFIX) :]: data[key]
                for key in data.files
                if key.startswith(_ARRAY_PREFIX)
            }
    except (OSError, ValueError) as error:
        raise DataError(f"cannot read artifact {path}: {error}") from error
    check_artifact_schema(metadata.pop(SCHEMA_VERSION_KEY, None), path)
    return arrays, metadata
