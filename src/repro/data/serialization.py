"""DITTO-style serialization of records, pairs, and pipeline artifacts.

DITTO (Example 2.2 of the paper) serializes a record pair into a single
token sequence of the form::

    [CLS] COL title VAL nike men's ... [SEP] COL title VAL nike men ... [SEP]

and feeds it to a transformer.  Our matcher consumes the same serialized
text through a hashed n-gram encoder, so the serialization format is the
shared contract between the data layer and the matching layer.  The same
serialized text doubles as the canonical byte representation used to
fingerprint candidate data for the pipeline's content-addressed artifact
cache (:mod:`repro.pipeline`).

The module also provides the on-disk artifact format of that cache:
:func:`write_artifact` / :func:`read_artifact` persist a mapping of numpy
arrays plus a JSON metadata document as a single ``.npz`` file, written
atomically and loaded with ``allow_pickle=False``.
"""

from __future__ import annotations

import json
import os
import struct
import tempfile
import zipfile
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..exceptions import DataError, FaultInjectionError
from ..faults import inject
from .pairs import RecordPair
from .records import Dataset, Record

CLS_TOKEN = "[CLS]"
SEP_TOKEN = "[SEP]"
COL_TOKEN = "COL"
VAL_TOKEN = "VAL"


@dataclass(frozen=True)
class SerializationConfig:
    """Controls which attributes are serialized and how long the output may be.

    Attributes
    ----------
    attributes:
        Attributes to serialize, in order.  ``None`` serializes every
        attribute of the dataset schema.  The paper uses only the product
        title for matching (Section 5.1).
    max_tokens:
        Hard cap on the number of whitespace tokens of the serialized
        pair (DITTO uses 512 sub-word tokens).
    lowercase:
        Whether to lowercase values before serialization.
    """

    attributes: tuple[str, ...] | None = None
    max_tokens: int = 256
    lowercase: bool = True


def serialize_record(
    record: Record,
    attributes: Sequence[str] | None = None,
    lowercase: bool = True,
) -> str:
    """Serialize a single record into ``COL a VAL v`` segments."""
    names: Iterable[str] = attributes if attributes is not None else record.attributes
    parts: list[str] = []
    for name in names:
        value = record.values.get(name)
        if value is None:
            continue
        text = value.lower() if lowercase else value
        parts.append(f"{COL_TOKEN} {name} {VAL_TOKEN} {text}")
    return " ".join(parts)


def serialize_pair_from_texts(
    left_text: str,
    right_text: str,
    config: SerializationConfig | None = None,
) -> str:
    """Assemble the DITTO pair string from pre-serialized record texts.

    Split out of :func:`serialize_pair` so batched encoders can memoize
    :func:`serialize_record` per record and still produce byte-identical
    pair serializations.
    """
    config = config or SerializationConfig()
    serialized = f"{CLS_TOKEN} {left_text} {SEP_TOKEN} {right_text} {SEP_TOKEN}"
    tokens = serialized.split()
    if len(tokens) > config.max_tokens:
        tokens = tokens[: config.max_tokens]
        if tokens[-1] != SEP_TOKEN:
            tokens.append(SEP_TOKEN)
        serialized = " ".join(tokens)
    return serialized


def serialize_pair(
    left: Record,
    right: Record,
    config: SerializationConfig | None = None,
) -> str:
    """Serialize a record pair into a single DITTO-style string."""
    config = config or SerializationConfig()
    left_text = serialize_record(left, config.attributes, config.lowercase)
    right_text = serialize_record(right, config.attributes, config.lowercase)
    return serialize_pair_from_texts(left_text, right_text, config)


def serialize_candidates(
    dataset: Dataset,
    pairs: Sequence[RecordPair],
    config: SerializationConfig | None = None,
) -> list[str]:
    """Serialize every pair of ``pairs`` against ``dataset``."""
    config = config or SerializationConfig()
    serialized = []
    for pair in pairs:
        left = dataset[pair.left_id]
        right = dataset[pair.right_id]
        serialized.append(serialize_pair(left, right, config))
    return serialized


# --------------------------------------------------------------- artifacts

#: Version of the on-disk artifact container format.  Bump when the
#: container layout changes incompatibly; readers refuse artifacts
#: written by a *newer* format with a clear error instead of failing
#: deep inside ``np.load`` or on a missing array key.
ARTIFACT_SCHEMA_VERSION = 1

#: Metadata field carrying the artifact schema version.
SCHEMA_VERSION_KEY = "__artifact_schema__"

#: Reserved ``.npz`` entry holding the JSON metadata of an artifact.
METADATA_KEY = "__artifact_metadata__"

#: Namespace prefix applied to array keys inside the ``.npz`` container,
#: so user-chosen keys can be arbitrary strings (``file`` would otherwise
#: collide with ``np.savez``'s positional parameter).
_ARRAY_PREFIX = "array::"

#: File extension of persisted artifacts.
ARTIFACT_SUFFIX = ".npz"


def write_artifact(
    path: str | Path,
    arrays: Mapping[str, np.ndarray],
    metadata: Mapping[str, object] | None = None,
) -> Path:
    """Persist named arrays plus JSON metadata as one ``.npz`` artifact.

    The file is written crash-safely: the payload goes to a temp file in
    the destination directory, is fsynced to stable storage, and only
    then renamed over the target (followed by a best-effort directory
    fsync).  Concurrent readers — e.g. parallel benchmark runs sharing a
    cache directory — never observe a partially written artifact, and a
    process killed mid-write leaves any previous version of the file
    untouched and loadable.

    Parameters
    ----------
    path:
        Target file path; the ``.npz`` suffix is appended when missing.
    arrays:
        Arrays to store.  Keys may be arbitrary strings except the
        reserved :data:`METADATA_KEY`.
    metadata:
        JSON-serializable metadata stored alongside the arrays.
    """
    path = Path(path)
    if path.suffix != ARTIFACT_SUFFIX:
        path = path.with_name(path.name + ARTIFACT_SUFFIX)
    if METADATA_KEY in arrays:
        raise DataError(f"array key {METADATA_KEY!r} is reserved for metadata")
    document_fields = dict(metadata or {})
    if SCHEMA_VERSION_KEY in document_fields:
        raise DataError(f"metadata key {SCHEMA_VERSION_KEY!r} is reserved")
    document_fields[SCHEMA_VERSION_KEY] = ARTIFACT_SCHEMA_VERSION
    document = json.dumps(document_fields, sort_keys=True).encode("utf-8")
    payload: dict[str, np.ndarray] = {
        f"{_ARRAY_PREFIX}{key}": np.ascontiguousarray(value)
        for key, value in arrays.items()
    }
    payload[METADATA_KEY] = np.frombuffer(document, dtype=np.uint8)
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.stem, suffix=ARTIFACT_SUFFIX
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            np.savez(handle, **payload)
            handle.flush()
            os.fsync(handle.fileno())
        fault = inject("storage.artifact_write")
        if fault is not None and fault.kind == "torn_write":
            _tear_write(temp_name, path, fault)
        os.replace(temp_name, path)
    except BaseException:
        if os.path.exists(temp_name):
            os.unlink(temp_name)
        raise
    _fsync_directory(path.parent)
    return path


def _fsync_directory(directory: Path) -> None:
    """Best-effort fsync of a directory so a rename survives power loss."""
    try:
        descriptor = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir open
        return
    try:
        os.fsync(descriptor)
    except OSError:  # pragma: no cover - filesystems without dir fsync
        pass
    finally:
        os.close(descriptor)


def _tear_write(temp_name: str, path: Path, fault) -> None:
    """Enact an injected ``torn_write``: leave a truncated file behind.

    Simulates the non-atomic failure mode the tmp+rename protocol
    prevents — a crash halfway through writing the destination — by
    copying only a prefix of the payload (the fault's ``seconds`` field
    reused as a 0..1 byte fraction) directly over the target, then
    raising :class:`FaultInjectionError` as the "crash".
    """
    with open(temp_name, "rb") as source:
        payload = source.read()
    fraction = min(max(fault.seconds, 0.0), 0.99)
    torn = payload[: max(1, int(len(payload) * fraction))]
    with open(path, "wb") as target:
        target.write(torn)
    raise FaultInjectionError(f"injected torn write of {path}")


def check_artifact_schema(version: object, path: str | Path) -> None:
    """Validate an artifact's schema version against this build's reader.

    Artifacts written before versioning (no version field) are treated as
    version 1.  Artifacts written by a *newer* format raise a clear
    :class:`DataError` instead of an opaque failure on a missing or
    re-shaped entry further down the line.
    """
    if version is None:
        return
    if not isinstance(version, int) or isinstance(version, bool):
        raise DataError(
            f"artifact {path} carries a malformed schema version {version!r}"
        )
    if version > ARTIFACT_SCHEMA_VERSION:
        raise DataError(
            f"artifact {path} was written with schema version {version}, but this "
            f"build reads versions up to {ARTIFACT_SCHEMA_VERSION}; upgrade the "
            f"repro library (or re-create the artifact) to use it"
        )


#: Exception types a corrupt or truncated container surfaces through
#: ``np.load`` / ``zipfile`` / JSON parsing.  Readers convert every one
#: of these into a typed :class:`DataError` so callers see exactly one
#: failure mode for "this file is not a readable artifact" — including
#: files torn mid-write, which ``zipfile`` reports as ``BadZipFile`` (a
#: plain ``Exception``) and numpy as assorted ``EOFError``/``KeyError``/
#: ``struct.error`` variants depending on where the bytes run out.
_READ_ERRORS = (OSError, ValueError, EOFError, KeyError, zipfile.BadZipFile, struct.error)


def read_artifact(path: str | Path) -> tuple[dict[str, np.ndarray], dict[str, object]]:
    """Load an artifact written by :func:`write_artifact`.

    Returns the ``(arrays, metadata)`` pair.  Raises :class:`DataError`
    when the file is not a valid artifact — corrupt, truncated, or not
    an artifact container at all — or was written by a newer artifact
    schema than this build can read (forward-compat check).
    """
    path = Path(path)
    if path.suffix != ARTIFACT_SUFFIX:
        path = path.with_name(path.name + ARTIFACT_SUFFIX)
    try:
        with np.load(path, allow_pickle=False) as data:
            if METADATA_KEY not in data.files:
                raise DataError(f"{path} is not a pipeline artifact (missing metadata)")
            metadata = json.loads(bytes(data[METADATA_KEY].tobytes()).decode("utf-8"))
            arrays = {
                key[len(_ARRAY_PREFIX) :]: data[key]
                for key in data.files
                if key.startswith(_ARRAY_PREFIX)
            }
    except DataError:
        raise
    except _READ_ERRORS as error:
        raise DataError(f"cannot read artifact {path}: {error}") from error
    check_artifact_schema(metadata.pop(SCHEMA_VERSION_KEY, None), path)
    return arrays, metadata


# ------------------------------------------------------- lazy / mmap reads


def _zip_member_data_offsets(path: Path) -> dict[str, tuple[int, int]] | None:
    """Absolute ``(data_offset, size)`` of each stored zip member.

    ``np.savez`` writes its members with ``ZIP_STORED`` (no compression),
    which means every embedded ``.npy`` file sits as a contiguous byte
    range inside the container — the precondition for memory-mapping it
    in place.  Returns ``None`` when any member is compressed or the
    local headers cannot be parsed (the caller falls back to an eager
    load).
    """
    offsets: dict[str, tuple[int, int]] = {}
    with zipfile.ZipFile(path) as archive, open(path, "rb") as raw:
        for info in archive.infolist():
            if info.compress_type != zipfile.ZIP_STORED:
                return None
            raw.seek(info.header_offset)
            header = raw.read(30)
            if len(header) != 30 or header[:4] != b"PK\x03\x04":
                return None
            name_length = int.from_bytes(header[26:28], "little")
            extra_length = int.from_bytes(header[28:30], "little")
            data_offset = info.header_offset + 30 + name_length + extra_length
            offsets[info.filename] = (data_offset, info.file_size)
    return offsets


def _read_npy_header(path: Path, offset: int) -> tuple[tuple[int, ...], bool, np.dtype, int]:
    """Parse the ``.npy`` header at ``offset``; returns shape/order/dtype/data offset."""
    with open(path, "rb") as handle:
        handle.seek(offset)
        version = np.lib.format.read_magic(handle)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
        elif version == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
        else:  # pragma: no cover - numpy has not emitted other versions
            raise DataError(f"unsupported npy format version {version} in {path}")
        if dtype.hasobject:
            raise DataError(f"artifact {path} contains an object-dtype array")
        return tuple(shape), bool(fortran), dtype, handle.tell()


class LazyArtifactArrays(Mapping):
    """Lazy, memory-mapped view of one artifact's array payload.

    Behaves like the plain ``dict`` returned by :func:`read_artifact`,
    but each array is materialized only on first access — as a read-only
    ``np.memmap`` over the artifact file when the container permits it
    (``np.savez`` members are stored uncompressed), or by a one-off
    eager read otherwise.  Memory-mapped pages are loaded on demand and
    remain evictable by the OS, so resident memory stays bounded by what
    is actually touched instead of the artifact size — the property the
    multi-tenant :mod:`repro.serve` model registry relies on.

    Example
    -------
    >>> arrays, metadata = read_artifact_lazy("model.npz")  # doctest: +SKIP
    >>> arrays["graph::features"].shape                     # doctest: +SKIP
    (1204, 48)
    """

    def __init__(self, path: str | Path) -> None:
        """Open ``path`` and index its members without reading any array."""
        self.path = Path(path)
        self._offsets = _zip_member_data_offsets(self.path)
        self._cache: dict[str, np.ndarray] = {}
        with np.load(self.path, allow_pickle=False) as data:
            self._keys = tuple(
                key[len(_ARRAY_PREFIX) :]
                for key in data.files
                if key.startswith(_ARRAY_PREFIX)
            )

    @property
    def mapped(self) -> bool:
        """Whether member arrays can be memory-mapped in place."""
        return self._offsets is not None

    def __len__(self) -> int:
        return len(self._keys)

    def __iter__(self) -> Iterator[str]:
        return iter(self._keys)

    def __contains__(self, key: object) -> bool:
        return key in self._keys

    def __getitem__(self, key: str) -> np.ndarray:
        if key in self._cache:
            return self._cache[key]
        if key not in self._keys:
            raise KeyError(key)
        member = f"{_ARRAY_PREFIX}{key}.npy"
        array: np.ndarray | None = None
        if self._offsets is not None and member in self._offsets:
            offset, _ = self._offsets[member]
            shape, fortran, dtype, data_offset = _read_npy_header(self.path, offset)
            if int(np.prod(shape)) == 0:
                # np.memmap refuses zero-length maps; an empty array has
                # no resident cost anyway.
                array = np.zeros(shape, dtype=dtype)
            else:
                array = np.memmap(
                    self.path,
                    dtype=dtype,
                    mode="r",
                    offset=data_offset,
                    shape=shape,
                    order="F" if fortran else "C",
                )
        if array is None:  # compressed or unparseable member: eager fallback
            with np.load(self.path, allow_pickle=False) as data:
                array = data[member[: -len(".npy")]]
        self._cache[key] = array
        return array


def read_artifact_lazy(
    path: str | Path,
) -> tuple[LazyArtifactArrays, dict[str, object]]:
    """Load an artifact's metadata eagerly and its arrays lazily.

    The counterpart of :func:`read_artifact` for artifacts too large to
    materialize up front: the JSON metadata is read immediately (it is
    tiny), while arrays resolve to read-only memory maps on first access
    through the returned :class:`LazyArtifactArrays`.  Raises
    :class:`DataError` for non-artifacts and newer-schema artifacts,
    exactly like the eager reader.
    """
    path = Path(path)
    if path.suffix != ARTIFACT_SUFFIX:
        path = path.with_name(path.name + ARTIFACT_SUFFIX)
    try:
        with np.load(path, allow_pickle=False) as data:
            if METADATA_KEY not in data.files:
                raise DataError(f"{path} is not a pipeline artifact (missing metadata)")
            metadata = json.loads(bytes(data[METADATA_KEY].tobytes()).decode("utf-8"))
        arrays = LazyArtifactArrays(path)
    except DataError:
        raise
    except _READ_ERRORS as error:
        raise DataError(f"cannot read artifact {path}: {error}") from error
    check_artifact_schema(metadata.pop(SCHEMA_VERSION_KEY, None), path)
    return arrays, metadata


# ------------------------------------------------------- update segments

#: Filename pattern of sidecar update segments: ``model.upd-0001.npz``,
#: ``model.upd-0002.npz``, ... next to the base artifact ``model.npz``.
#: Segments are ordinary artifacts (same container format, mmap-capable),
#: numbered consecutively from 1; readers replay them in index order.
UPDATE_SEGMENT_INFIX = ".upd-"

#: Zero-padded digits in a segment index (bounds the chain at 9999 —
#: far beyond the point where compaction should have rebased anyway).
_SEGMENT_INDEX_DIGITS = 4


def artifact_base_path(path: str | Path) -> Path:
    """Normalize ``path`` to the base artifact path (suffix appended)."""
    path = Path(path)
    if path.suffix != ARTIFACT_SUFFIX:
        path = path.with_name(path.name + ARTIFACT_SUFFIX)
    return path


def segment_path(path: str | Path, index: int) -> Path:
    """The sidecar path of update segment ``index`` (1-based) for ``path``.

    >>> segment_path("model.npz", 3).name
    'model.upd-0003.npz'
    """
    if index < 1:
        raise DataError(f"segment index must be >= 1, got {index}")
    base = artifact_base_path(path)
    stem = base.name[: -len(ARTIFACT_SUFFIX)]
    name = (
        f"{stem}{UPDATE_SEGMENT_INFIX}"
        f"{index:0{_SEGMENT_INDEX_DIGITS}d}{ARTIFACT_SUFFIX}"
    )
    return base.with_name(name)


def list_segment_paths(path: str | Path) -> list[Path]:
    """Existing update-segment files of ``path``, in replay order.

    Only the *consecutive* chain starting at index 1 is returned; a gap
    (e.g. a deleted middle segment) truncates the chain there so a
    partially cleaned directory never replays out-of-order state.  Files
    past a gap are ignored, not errors — :func:`clear_segment_paths`
    removes them wholesale.
    """
    paths: list[Path] = []
    index = 1
    while True:
        candidate = segment_path(path, index)
        if not candidate.exists():
            break
        paths.append(candidate)
        index += 1
    return paths


def clear_segment_paths(path: str | Path) -> list[Path]:
    """Delete every ``*.upd-NNNN.npz`` sidecar of ``path`` (gaps included).

    Used when a full (rebased) artifact is rewritten: stale segments from
    the previous chain must not be replayed over the new base.  Returns
    the removed paths.
    """
    base = artifact_base_path(path)
    stem = base.name[: -len(ARTIFACT_SUFFIX)]
    prefix = f"{stem}{UPDATE_SEGMENT_INFIX}"
    removed: list[Path] = []
    if not base.parent.exists():
        return removed
    for candidate in sorted(base.parent.glob(f"{prefix}*{ARTIFACT_SUFFIX}")):
        suffix_part = candidate.name[len(prefix) : -len(ARTIFACT_SUFFIX)]
        if suffix_part.isdigit():
            candidate.unlink()
            removed.append(candidate)
    return removed
