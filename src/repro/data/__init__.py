"""Record, pair, label, split, and serialization primitives."""

from .records import Record, Dataset
from .pairs import RecordPair, LabeledPair, CandidateSet
from .splits import SplitRatio, DatasetSplit, split_candidates
from .serialization import (
    SerializationConfig,
    serialize_record,
    serialize_pair,
    serialize_candidates,
    write_artifact,
    read_artifact,
    CLS_TOKEN,
    SEP_TOKEN,
)

__all__ = [
    "Record",
    "Dataset",
    "RecordPair",
    "LabeledPair",
    "CandidateSet",
    "SplitRatio",
    "DatasetSplit",
    "split_candidates",
    "SerializationConfig",
    "serialize_record",
    "serialize_pair",
    "serialize_candidates",
    "write_artifact",
    "read_artifact",
    "CLS_TOKEN",
    "SEP_TOKEN",
]
