"""Train/validation/test splitting of candidate sets.

The paper splits every benchmark into train/validation/test with a 3:1:1
ratio (Section 5.1).  Splits operate on candidate *pairs* (not records),
matching the published benchmark format, and support stratification on a
reference intent so positive rates stay comparable across splits
(Table 4 reports nearly identical rates per split).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError
from .pairs import CandidateSet


@dataclass(frozen=True)
class SplitRatio:
    """Relative sizes of the train, validation, and test splits."""

    train: float = 3.0
    valid: float = 1.0
    test: float = 1.0

    def __post_init__(self) -> None:
        if min(self.train, self.valid, self.test) < 0:
            raise ConfigurationError("split ratios must be non-negative")
        if self.train + self.valid + self.test <= 0:
            raise ConfigurationError("at least one split ratio must be positive")

    def fractions(self) -> tuple[float, float, float]:
        """Normalized (train, valid, test) fractions summing to 1."""
        total = self.train + self.valid + self.test
        return self.train / total, self.valid / total, self.test / total


@dataclass
class DatasetSplit:
    """The three candidate subsets produced by :func:`split_candidates`."""

    train: CandidateSet
    valid: CandidateSet
    test: CandidateSet

    def __iter__(self):
        return iter((self.train, self.valid, self.test))

    def sizes(self) -> dict[str, int]:
        """Number of pairs per split."""
        return {"train": len(self.train), "valid": len(self.valid), "test": len(self.test)}

    def positive_rates(self) -> dict[str, dict[str, float]]:
        """Per-split, per-intent positive rates (the Table 4 profile)."""
        return {
            name: {intent: part.positive_rate(intent) for intent in part.intents}
            for name, part in (("train", self.train), ("valid", self.valid), ("test", self.test))
        }


def split_candidates(
    candidates: CandidateSet,
    ratio: SplitRatio | None = None,
    stratify_intent: str | None = None,
    seed: int = 13,
) -> DatasetSplit:
    """Randomly split a candidate set into train/validation/test subsets.

    Parameters
    ----------
    candidates:
        The labeled candidate set to split.
    ratio:
        Relative split sizes; defaults to the paper's 3:1:1.
    stratify_intent:
        When given, positives and negatives of this intent are split
        separately so each subset keeps (approximately) the global
        positive rate.  Defaults to the first intent when available.
    seed:
        Seed of the shuffling RNG.
    """
    ratio = ratio or SplitRatio()
    rng = np.random.default_rng(seed)
    n = len(candidates)
    if stratify_intent is None and candidates.intents:
        stratify_intent = candidates.intents[0]

    if n == 0:
        empty = candidates.subset([])
        return DatasetSplit(train=empty, valid=candidates.subset([]), test=candidates.subset([]))

    if stratify_intent is not None:
        labels = candidates.labels(stratify_intent)
        groups = [np.flatnonzero(labels == 1), np.flatnonzero(labels == 0)]
    else:
        groups = [np.arange(n)]

    train_idx: list[int] = []
    valid_idx: list[int] = []
    test_idx: list[int] = []
    train_frac, valid_frac, _ = ratio.fractions()
    for group in groups:
        permuted = rng.permutation(group)
        n_group = len(permuted)
        n_train = int(round(train_frac * n_group))
        n_valid = int(round(valid_frac * n_group))
        n_train = min(n_train, n_group)
        n_valid = min(n_valid, n_group - n_train)
        train_idx.extend(permuted[:n_train].tolist())
        valid_idx.extend(permuted[n_train : n_train + n_valid].tolist())
        test_idx.extend(permuted[n_train + n_valid :].tolist())

    train_idx.sort()
    valid_idx.sort()
    test_idx.sort()
    return DatasetSplit(
        train=candidates.subset(train_idx),
        valid=candidates.subset(valid_idx),
        test=candidates.subset(test_idx),
    )
