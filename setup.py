"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file
exists so legacy editable installs (``python setup.py develop`` or
``pip install -e .`` without the ``wheel`` package) work in fully
offline environments.
"""

from setuptools import setup

setup()
