#!/usr/bin/env python
"""Check that relative links in the repo's markdown docs resolve.

Stdlib-only (regex + pathlib) so it runs anywhere the repo does:

    python scripts/check_doc_links.py [FILES...]

With no arguments it checks the user-facing documentation set
(README.md, PERFORMANCE.md, ROADMAP.md, and everything under docs/).
For each inline markdown link ``[text](target)``:

- ``http(s)://`` / ``mailto:`` targets are skipped (no network here);
- targets that resolve *outside* the repository root are skipped —
  GitHub-relative URLs such as the CI badge
  (``../../actions/workflows/ci.yml/badge.svg``) are served by the
  forge, not the working tree;
- everything else must exist on disk, and a ``#fragment`` pointing
  into a markdown file must match one of that file's heading anchors
  (GitHub's slug rules: lowercase, punctuation stripped, spaces to
  hyphens, duplicate slugs numbered).

Exit status is the number of broken links (0 = all good).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_DOCS = ("README.md", "PERFORMANCE.md", "ROADMAP.md", "docs")

# Inline links/images; [text](target "title") titles are trimmed below.
LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_PATTERN = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE = re.compile(r"^(```|~~~)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def heading_anchors(path: Path) -> set[str]:
    """GitHub-style anchor slugs for every heading in ``path``."""
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_PATTERN.match(line)
        if not match:
            continue
        text = match.group(1).strip()
        # Drop trailing "closing" hashes and inline link syntax.
        text = re.sub(r"\s+#+\s*$", "", text)
        text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
        slug = re.sub(r"[^\w\- ]", "", text.lower(), flags=re.UNICODE)
        slug = slug.replace(" ", "-")
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        slugs.add(slug if seen == 0 else f"{slug}-{seen}")
    return slugs


def iter_links(path: Path):
    """Yield ``(line_number, target)`` for each inline link in ``path``."""
    in_fence = False
    for number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_PATTERN.finditer(line):
            yield number, match.group(1)


def check_file(path: Path) -> list[str]:
    """Return human-readable problems for every broken link in ``path``."""
    problems: list[str] = []
    for number, target in iter_links(path):
        target = target.strip("<>")
        if target.startswith(SKIP_SCHEMES):
            continue
        base, _, fragment = target.partition("#")
        if not base:  # same-document anchor
            if fragment and fragment not in heading_anchors(path):
                problems.append(f"{path}:{number}: missing anchor #{fragment}")
            continue
        resolved = (path.parent / base).resolve()
        try:
            resolved.relative_to(REPO_ROOT)
        except ValueError:
            continue  # forge-relative URL (e.g. the CI badge); not ours to check
        if not resolved.exists():
            problems.append(f"{path}:{number}: broken link {target}")
            continue
        if fragment and resolved.suffix == ".md":
            if fragment not in heading_anchors(resolved):
                problems.append(
                    f"{path}:{number}: {base} has no anchor #{fragment}"
                )
    return problems


def collect(arguments: list[str]) -> list[Path]:
    """Expand CLI arguments (or the default doc set) into markdown files."""
    roots = [REPO_ROOT / a for a in arguments] if arguments else [
        REPO_ROOT / name for name in DEFAULT_DOCS
    ]
    files: list[Path] = []
    for root in roots:
        if root.is_dir():
            files.extend(sorted(root.rglob("*.md")))
        elif root.exists():
            files.append(root)
        else:
            print(f"warning: {root} does not exist", file=sys.stderr)
    return files


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the number of broken links."""
    files = collect(list(argv if argv is not None else sys.argv[1:]))
    problems: list[str] = []
    checked = 0
    for path in files:
        problems.extend(check_file(path))
        checked += 1
    for problem in problems:
        print(problem)
    print(f"checked {checked} file(s): {len(problems)} broken link(s)")
    return len(problems)


if __name__ == "__main__":
    raise SystemExit(main())
