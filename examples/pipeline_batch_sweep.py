"""Staged pipeline + batch grids: cache-aware experiment sweeps.

This example shows the pipeline orchestration subsystem the way the
paper's own evaluation uses it:

1. run FlexER once through the staged :class:`PipelineRunner` (every
   stage is computed and cached);
2. re-run it — every stage is served from the artifact cache and the
   result is byte-identical;
3. sweep the intra-layer ``k`` of Table 8 through the
   :class:`BatchRunner` — only graph-build and the equivalence GNN are
   recomputed per scenario, matcher training and representation are
   reused from the cache.

Run with::

    PYTHONPATH=src python examples/pipeline_batch_sweep.py
"""

from __future__ import annotations

import numpy as np

from repro import load_benchmark
from repro.config import FlexERConfig, GNNConfig, GraphConfig, MatcherConfig
from repro.evaluation import evaluate_binary, format_table
from repro.pipeline import BatchRunner, PipelineRunner, k_sweep

EQUIVALENCE = "equivalence"


def main() -> None:
    benchmark = load_benchmark("amazon_mi", num_pairs=200, products_per_domain=15, seed=7)
    config = FlexERConfig(
        matcher=MatcherConfig(hidden_dims=(48, 24), n_features=192, epochs=8, seed=7),
        graph=GraphConfig(k_neighbors=6),
        gnn=GNNConfig(hidden_dim=32, epochs=30, seed=7),
    )
    runner = PipelineRunner()  # in-memory cache; pass ArtifactCache("dir") to persist

    # 1. Cold run: every stage is computed.
    cold = runner.run(
        benchmark.split, benchmark.intents, config, target_intents=(EQUIVALENCE,)
    )
    print("cold run stages:", dict(cold.stage_status()))

    # 2. Warm run: every stage is a cache hit, results are byte-identical.
    warm = runner.run(
        benchmark.split, benchmark.intents, config, target_intents=(EQUIVALENCE,)
    )
    print("warm run stages:", dict(warm.stage_status()))
    assert np.array_equal(
        cold.solution.probabilities[EQUIVALENCE], warm.solution.probabilities[EQUIVALENCE]
    )

    # 3. Table-8-style k sweep: matcher-fit and representation are reused.
    scenarios = k_sweep(config, (0, 2, 4, 6, 8, 10), target_intents=(EQUIVALENCE,))
    runs = BatchRunner(runner).run(
        benchmark.split, benchmark.intents, scenarios, dataset="amazon_mi"
    )
    labels = benchmark.split.test.labels(EQUIVALENCE)
    rows = [
        [
            run.scenario.name,
            evaluate_binary(run.result.solution.prediction(EQUIVALENCE), labels).f1,
            "yes" if run.skipped_expensive_stages else "no",
        ]
        for run in runs
    ]
    print(
        format_table(
            ["Scenario", "equivalence F1", "matcher+repr cached"],
            rows,
            title="\nIntra-layer k sweep through the BatchRunner",
        )
    )
    print("cache counters:", runner.cache.stats.as_dict())


if __name__ == "__main__":
    main()
