"""Show that multi-intent information improves *universal* entity resolution.

The paper's Section 5.4/5.5 finding: even when the goal is only the
classic, single-intent (equivalence) resolution, training FlexER with
additional intent layers improves the equivalence F1 over the per-intent
matcher, and using more intent layers helps more (Figure 6).

The script trains the matchers once, then rebuilds the multiplex graph
with growing intent subsets ({Eq}, {Eq, Brand}, ..., all intents) and
reports the equivalence-intent F1 of each configuration next to the
plain In-parallel matcher baseline.

Run with::

    python examples/universal_er_improvement.py
"""

from __future__ import annotations

from repro import FlexER, FlexERConfig, load_benchmark
from repro.core import MIERSolution
from repro.evaluation import evaluate_binary, format_table
from repro.matching import InParallelSolver

EQUIVALENCE = "equivalence"


def main() -> None:
    benchmark = load_benchmark("amazon_mi", num_pairs=220, products_per_domain=18, seed=21)
    split = benchmark.split
    config = FlexERConfig.fast()
    labels = split.test.labels(EQUIVALENCE)

    # Baseline: the equivalence matcher alone (universal entity resolution).
    baseline = InParallelSolver(benchmark.intents, matcher_config=config.matcher)
    baseline.fit(split.train)
    baseline_prediction = baseline.predict(split.test)[EQUIVALENCE]
    baseline_f1 = evaluate_binary(baseline_prediction, labels).f1

    # FlexER with growing intent subsets (always containing equivalence).
    flexer = FlexER(benchmark.intents, config)
    flexer.fit(split.train, split.valid)
    rows = [["matcher only (DITTO analogue)", 1, baseline_f1]]
    for size in range(1, len(benchmark.intents) + 1):
        subset = benchmark.intents[:size]
        result = flexer.predict(split.test, intent_subset=subset, target_intents=(EQUIVALENCE,))
        f1 = evaluate_binary(result.solution.prediction(EQUIVALENCE), labels).f1
        rows.append([" + ".join(subset), size, f1])

    print(format_table(
        ["Configuration", "#intent layers", "equivalence F1"],
        rows,
        title="Universal ER with multi-intent information (AmazonMI, cf. Figure 6)",
    ))

    solution = MIERSolution.from_mapping(
        split.test, {EQUIVALENCE: baseline_prediction}, solver_name="baseline"
    )
    matched = len(solution.resolution(EQUIVALENCE))
    print(f"\nbaseline resolution size on the test split: {matched} matched pairs")


if __name__ == "__main__":
    main()
