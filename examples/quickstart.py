"""Quickstart: solve a multiple-intents entity resolution problem with FlexER.

The script builds a small AmazonMI-like benchmark (products described by
title only, five resolution intents), runs the FlexER pipeline
(per-intent matchers → multiplex intent graph → GraphSAGE → prediction
per intent), evaluates it with the paper's measures, and prints one clean
dataset view per intent.

To start from *raw records* instead of a pre-built candidate split —
blocking, label attachment, and splitting included — see
``examples/end_to_end_resolve.py`` and :func:`repro.resolve`.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import FlexER, FlexERConfig, evaluate_solution, load_benchmark
from repro.evaluation import format_table


def main() -> None:
    # 1. Build a benchmark: records, labeled candidate pairs, a 3:1:1 split.
    benchmark = load_benchmark("amazon_mi", num_pairs=200, products_per_domain=15, seed=7)
    print(f"benchmark: {benchmark.name}")
    print(f"  records: {len(benchmark.dataset)}  pairs: {len(benchmark.candidates)}")
    print(f"  intents: {', '.join(benchmark.intents)}\n")

    # 2. Run FlexER end to end (a fast configuration keeps this under a minute).
    flexer = FlexER(benchmark.intents, FlexERConfig.fast())
    result = flexer.run_split(benchmark.split)

    # 3. Evaluate with the paper's multi-intent measures.
    evaluation = evaluate_solution(result.solution)
    rows = [
        [intent, metrics.precision, metrics.recall, metrics.f1]
        for intent, metrics in evaluation.per_intent.items()
    ]
    print(format_table(["Intent", "P", "R", "F1"], rows, title="Per-intent results"))
    print(
        f"\nMI-P={evaluation.mi_precision:.3f}  MI-R={evaluation.mi_recall:.3f}  "
        f"MI-F={evaluation.mi_f1:.3f}  MI-Acc={evaluation.mi_accuracy:.3f}"
    )

    # 4. Derive one clean dataset view per intent (the merging phase).
    print("\nClean views (records kept after merging, per intent):")
    for intent in benchmark.intents:
        resolution = result.solution.resolution(intent)
        clean = resolution.clean_view(benchmark.dataset)
        print(f"  {intent:<24s} {len(benchmark.dataset)} records -> {len(clean)} representatives")


if __name__ == "__main__":
    main()
