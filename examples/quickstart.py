"""Quickstart: fit a FlexER model once, then query new records online.

The script builds a small AmazonMI-like benchmark (products described by
title only, five resolution intents), fits the FlexER pipeline once
(per-intent matchers → multiplex intent graph → GraphSAGE) into a
persistable :class:`repro.ResolverModel`, evaluates the corpus
resolution with the paper's measures, and then resolves a micro-batch of
*held-out* records against the fitted corpus with ``model.query()`` —
no refitting, candidates retrieved by the bundled ANN index.

The pre-lifecycle one-shot pattern (``FlexER(...).run_split(split)``)
still works behind a ``DeprecationWarning`` shim; see
``examples/end_to_end_resolve.py`` for persistence (save → load → query)
and blocking-quality reporting.

Run with::

    PYTHONPATH=src python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro.datasets import BENCHMARK_LABELERS
from repro.evaluation import format_table


def main() -> None:
    # 1. Build a benchmark and hold the last few records out of the
    #    corpus — they will arrive later as "new" records to query.
    benchmark = repro.load_benchmark("amazon_mi", num_pairs=200, products_per_domain=15, seed=7)
    records = list(benchmark.dataset.records)
    corpus = repro.Dataset(records=records[:-5], name=benchmark.dataset.name)
    new_records = records[-5:]
    print(f"benchmark: {benchmark.name}")
    print(f"  corpus records: {len(corpus)}  held-out records: {len(new_records)}")
    print(f"  intents: {', '.join(benchmark.intents)}\n")

    # 2. Fit once.  The labeler provides per-intent ground truth for the
    #    blocked corpus pairs; the returned model bundles every fitted
    #    component and is persistable via model.save(path).
    labeler = BENCHMARK_LABELERS["amazon_mi"]
    products = benchmark.record_products

    def label_pair(left, right):
        return labeler.label_pair(products[left.record_id], products[right.record_id])

    model = repro.fit(
        corpus,
        intents=labeler.intent_names,
        labeler=label_pair,
        config=repro.FlexERConfig.fast(),
    )

    # 3. Evaluate the corpus resolution with the paper's measures.
    evaluation = model.fit_result.evaluate()
    rows = [
        [intent, metrics.precision, metrics.recall, metrics.f1]
        for intent, metrics in evaluation.per_intent.items()
    ]
    print(format_table(["Intent", "P", "R", "F1"], rows, title="Per-intent corpus results"))
    print(
        f"\nMI-P={evaluation.mi_precision:.3f}  MI-R={evaluation.mi_recall:.3f}  "
        f"MI-F={evaluation.mi_f1:.3f}  MI-Acc={evaluation.mi_accuracy:.3f}"
    )

    # 4. Query many: resolve the held-out records against the corpus
    #    online (frozen inference over the touched subgraph only).
    result = model.query(new_records, k=3, mode="online")
    print(f"\nquery: {len(result.record_ids)} new records -> {len(result)} candidate pairs")
    equivalent = set(result.matches("equivalence"))
    for record in new_records:
        matches = [
            pair.other(record.record_id)
            for pair in result.pairs_for(record.record_id)
            if pair in equivalent
        ]
        print(f"  {record.record_id}: equivalent to {matches or 'nothing in the corpus'}")


if __name__ == "__main__":
    main()
