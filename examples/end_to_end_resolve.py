"""End-to-end MIER lifecycle from raw records: fit → save → load → query.

The other examples start from a pre-built, labeled candidate split.
This one starts where a real deployment starts — a bag of raw records —
and runs the full production lifecycle through the composable Resolver
facade:

    raw Dataset
      → blocking           (registry-built from ``config.blocker``)
      → label attachment   (ground-truth labeler over record pairs)
      → 3:1:1 split        (stratified on the first intent)
      → staged FlexER      (matcher-fit → representation → graph → GNNs)
      → ResolverModel      (persistable: save / load)
      → model.query(...)   (new records, online, no refitting)

along with the blocking-quality metrics (reduction ratio, per-intent
pair completeness) that tell you what the blocker cost you before
matching even began.  The one-shot ``repro.resolve(dataset, ...)`` call
remains available as a thin fit+predict convenience when you do not
need the model artifact.

Run with::

    PYTHONPATH=src python examples/end_to_end_resolve.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import repro
from repro.datasets import BENCHMARK_LABELERS


def main() -> None:
    # --- Raw records -----------------------------------------------------
    # The synthetic AmazonMI generator plays the role of the outside
    # world: we keep only its raw records and the ground-truth product
    # metadata behind them (for labeling), discarding its candidate set.
    benchmark = repro.load_benchmark("amazon_mi", num_pairs=100, products_per_domain=12, seed=7)
    records = list(benchmark.dataset.records)
    dataset = repro.Dataset(records=records[:-4], name=benchmark.dataset.name)
    incoming = records[-4:]
    print(f"raw corpus records: {len(dataset)} ({dataset.name}); held back: {len(incoming)}")

    # --- Ground truth ----------------------------------------------------
    # Intents are expressed only through labels (Section 5.1 of the
    # paper); here the labeling functions read the product metadata.
    labeler = BENCHMARK_LABELERS["amazon_mi"]
    products = benchmark.record_products

    def label_pair(left, right):
        return labeler.label_pair(products[left.record_id], products[right.record_id])

    # --- Configuration ---------------------------------------------------
    # Every component is a registry spec: swap the blocker (or solver)
    # by editing a string, not the pipeline.
    config = repro.FlexERConfig(
        matcher=repro.MatcherConfig(hidden_dims=(32, 16), n_features=128, epochs=6),
        graph=repro.GraphConfig(k_neighbors=3),
        gnn=repro.GNNConfig(hidden_dim=24, epochs=15),
        solver="in_parallel",
        blocker={"type": "token", "min_shared": 1},
    )

    # --- Fit once --------------------------------------------------------
    model = repro.fit(
        dataset,
        intents=labeler.intent_names,
        labeler=label_pair,
        config=config,
    )
    result = model.fit_result

    # --- Report ----------------------------------------------------------
    quality = result.blocking
    assert quality is not None and quality.pair_completeness is not None
    print(
        f"blocking: {quality.num_candidate_pairs}/{quality.num_admissible_pairs} "
        f"admissible pairs kept (reduction ratio {quality.reduction_ratio:.3f})"
    )
    for intent in result.intents:
        print(f"  pair completeness[{intent}]: {quality.pair_completeness[intent]:.3f}")

    print(f"\nstages: {result.pipeline.stage_status()}")
    evaluation = result.evaluate()
    print(f"MI-F1 over the test split: {evaluation.mi_f1:.3f}")
    for intent, intent_eval in result.intent_evaluations().items():
        print(
            f"  {intent}: P={intent_eval.precision:.3f} "
            f"R={intent_eval.recall:.3f} F1={intent_eval.f1:.3f}"
        )

    # --- Persist and serve ----------------------------------------------
    # The model is a single fingerprinted .npz artifact; a fresh process
    # (or machine) loads it and serves queries without any refitting.
    with tempfile.TemporaryDirectory() as tmp:
        path = model.save(Path(tmp) / "resolver_model.npz")
        print(f"\nmodel saved to {path.name} ({path.stat().st_size // 1024} KiB)")
        served = repro.load_model(path)

        # New records arrive: retrieve candidates from the fitted corpus
        # (ANN over hashed record vectors) and score them online.
        answer = served.query(incoming, k=3, mode="online")
        print(f"query: {len(answer.record_ids)} new records -> {len(answer)} pairs")
        for intent in ("equivalence",):
            matched = answer.matches(intent)
            print(f"  {intent}: {len(matched)} predicted matches")
            for pair in matched[:5]:
                print(f"    {pair.left_id} <-> {pair.right_id}")

    # Re-fitting with a shared cache would hit every stage; see
    # examples/pipeline_batch_sweep.py for cache-driven grids.


if __name__ == "__main__":
    main()
