"""Compare FlexER against the paper's MIER baselines on one benchmark.

Reproduces a miniature Table 5: the Naïve (one-size-fits-all),
In-parallel (one matcher per intent), and Multi-label (joint training)
baselines against FlexER, reporting MI-P / MI-R / MI-F / MI-Acc and the
reduction of residual error of FlexER over the In-parallel baseline.

Run with::

    python examples/compare_baselines.py [amazon_mi|walmart_amazon|wdc]
"""

from __future__ import annotations

import sys

from repro import FlexER, FlexERConfig, evaluate_solution, load_benchmark
from repro.core import MIERSolution
from repro.evaluation import format_table, multi_intent_error_reduction
from repro.matching import InParallelSolver, MultiLabelSolver, NaiveSolver


def main(dataset_name: str = "amazon_mi") -> None:
    benchmark = load_benchmark(dataset_name, num_pairs=200, products_per_domain=15, seed=11)
    split = benchmark.split
    config = FlexERConfig.fast()
    print(f"dataset: {dataset_name}  intents: {', '.join(benchmark.intents)}\n")

    evaluations = {}
    solvers = {
        "Naive": NaiveSolver(benchmark.intents, matcher_config=config.matcher),
        "In-parallel": InParallelSolver(benchmark.intents, matcher_config=config.matcher),
        "Multi-label": MultiLabelSolver(benchmark.intents, matcher_config=config.matcher),
    }
    for name, solver in solvers.items():
        solver.fit(split.train)
        solution = MIERSolution.from_mapping(
            split.test, solver.predict(split.test), solver_name=name
        )
        evaluations[name] = evaluate_solution(solution)

    flexer = FlexER(benchmark.intents, config)
    flexer.fit(split.train, split.valid if len(split.valid) > 0 else None)
    result = flexer.predict(split.test)
    evaluations["FlexER"] = evaluate_solution(result.solution)

    rows = []
    for name, evaluation in evaluations.items():
        error_reduction = (
            multi_intent_error_reduction(evaluation, evaluations["In-parallel"], "MI-F")
            if name == "FlexER"
            else float("nan")
        )
        rows.append([
            name,
            evaluation.mi_precision,
            evaluation.mi_recall,
            evaluation.mi_f1,
            evaluation.mi_accuracy,
            error_reduction,
        ])
    print(format_table(
        ["Model", "MI-P", "MI-R", "MI-F", "MI-Acc", "MI-E_F %"],
        rows,
        title=f"MIER results on {dataset_name} (miniature Table 5)",
    ))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "amazon_mi")
