"""Define a dataset, intents, and labels by hand and run the full ER pipeline.

This example shows the library as a downstream user would adopt it,
without the synthetic benchmark generators:

1. define records (an online-shop catalog excerpt, mirroring Table 1 of
   the paper);
2. run the blocking phase (shared 4-gram blocker) to build candidate
   pairs;
3. label the candidates for two custom intents — equivalence and "same
   product family" — exactly as a user would label pairs from implicit
   feedback;
4. train FlexER and inspect the per-intent resolutions, the intent
   interrelationships derived from the labels (overlap / subsumption),
   and the clean views.

Run with::

    python examples/custom_intents_pipeline.py
"""

from __future__ import annotations

from repro import (
    CandidateSet,
    Dataset,
    FlexER,
    FlexERConfig,
    GNNConfig,
    GraphConfig,
    LabeledPair,
    MatcherConfig,
    QGramBlocker,
    Record,
    SplitRatio,
    split_candidates,
)
from repro.core import IntentSet
from repro.evaluation import evaluate_solution, format_table

#: A hand-written catalog: four product families, several variants and
#: duplicated listings each (title-only records, like AmazonMI).
CATALOG = {
    # family: list of (variant base title, number of duplicated listings)
    "lunar-force": [
        ("Nike Men's Lunar Force 1 Duckboot", 3),
        ("Nike Men's Lunar Force 1 Duckboot Low Black", 2),
    ],
    "air-max": [
        ("Nike Men's Air Max 2016 Running Shoe", 3),
        ("Nike Men's Air Max Stutter Step Basketball Shoe", 2),
    ],
    "d-rose": [
        ("adidas Performance Men's D Rose 6 Boost Primeknit Basketball", 3),
        ("adidas Performance Men's D Rose 7 Low Basketball Shoe", 2),
    ],
    "ultraboost": [
        ("adidas Men's Ultraboost 21 Running Shoe", 2),
        ("adidas Men's Ultraboost DNA Running Shoe White", 2),
    ],
    "gel-kayano": [
        ("ASICS Men's Gel Kayano 27 Running Shoe", 3),
        ("ASICS Men's Gel Kayano Lite Running Shoe Blue", 2),
    ],
    "fresh-foam": [
        ("New Balance Men's Fresh Foam 1080 V11 Running Shoe", 3),
        ("New Balance Men's Fresh Foam Arishi V3 Trail Shoe", 2),
    ],
    "court-vision": [
        ("Nike Men's Court Vision Low Sneaker", 3),
        ("Nike Men's Court Vision Mid Basketball Shoe White", 2),
    ],
    "charged-assert": [
        ("Under Armour Men's Charged Assert 9 Running Shoe", 3),
    ],
}

#: Duplicate-listing noise: suffixes appended by different sellers.
SELLER_SUFFIXES = ["", ", Black/White size 10", " - official store", " (2021 model)"]


def build_dataset() -> tuple[Dataset, dict[str, tuple[str, str]]]:
    """Create records and remember (family, variant) ground truth per record."""
    records = []
    truth: dict[str, tuple[str, str]] = {}
    counter = 0
    for family, variants in CATALOG.items():
        for variant_index, (title, copies) in enumerate(variants):
            variant_key = f"{family}/{variant_index}"
            for copy_index in range(copies):
                counter += 1
                record_id = f"r{counter:03d}"
                listing = title + SELLER_SUFFIXES[copy_index % len(SELLER_SUFFIXES)]
                records.append(Record(record_id=record_id, values={"title": listing}))
                truth[record_id] = (family, variant_key)
    return Dataset(records=records, name="shop-catalog", attributes=("title",)), truth


def main() -> None:
    dataset, truth = build_dataset()
    print(f"records: {len(dataset)}")

    # Blocking: keep pairs sharing at least one character 4-gram.
    blocker = QGramBlocker(q=4, min_shared=2)
    pairs = blocker.block(dataset)
    print(f"candidate pairs after blocking: {len(pairs)}")

    # Intent labeling from the ground truth:
    #   equivalence  — same variant (same real-world product)
    #   same_family  — same product family (a broader interpretation)
    candidates = CandidateSet(dataset, intents=("equivalence", "same_family"))
    for pair in pairs:
        left_family, left_variant = truth[pair.left_id]
        right_family, right_variant = truth[pair.right_id]
        candidates.add(
            LabeledPair(
                pair=pair,
                labels={
                    "equivalence": int(left_variant == right_variant),
                    "same_family": int(left_family == right_family),
                },
            )
        )

    # Intent interrelationships derived from the labels (Definitions 3-4).
    intent_set = IntentSet.from_candidates(candidates)
    relationships = intent_set.relationships(candidates)
    print(
        "equivalence is a sub-intent of same_family:",
        relationships.is_sub_intent("equivalence", "same_family"),
    )

    # Split and run FlexER.  The catalog is tiny, so a slightly stronger
    # matcher configuration than the test preset is used.
    split = split_candidates(candidates, SplitRatio(2, 1, 1), stratify_intent="equivalence", seed=5)
    config = FlexERConfig(
        matcher=MatcherConfig(hidden_dims=(48, 24), n_features=192, epochs=30, seed=3),
        graph=GraphConfig(k_neighbors=4),
        gnn=GNNConfig(hidden_dim=32, epochs=60, seed=3),
    )
    flexer = FlexER(candidates.intents, config)
    flexer.fit(split.train, split.valid if len(split.valid) > 0 else None)
    result = flexer.predict(split.test)
    evaluation = evaluate_solution(result.solution)

    rows = [
        [intent, metrics.precision, metrics.recall, metrics.f1]
        for intent, metrics in evaluation.per_intent.items()
    ]
    print(format_table(["Intent", "P", "R", "F1"], rows, title="\nTest-split results"))

    # Per-intent clean views over the full dataset.
    print("\nClean views:")
    for intent in candidates.intents:
        resolution = result.solution.resolution(intent)
        clean = resolution.clean_view(dataset)
        print(f"  {intent:<12s}: {len(dataset)} listings -> {len(clean)} representatives")


if __name__ == "__main__":
    main()
