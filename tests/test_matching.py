"""Tests for pair feature encoding, matchers, and the MIER baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import MatcherConfig
from repro.core.mier import MIERSolution
from repro.evaluation import evaluate_solution
from repro.exceptions import MatchingError, NotFittedError
from repro.matching import (
    InParallelSolver,
    MultiLabelMatcher,
    MultiLabelSolver,
    NaiveSolver,
    PairFeatureConfig,
    PairFeatureEncoder,
    PairMatcher,
)

FAST_MATCHER = MatcherConfig(hidden_dims=(24, 12), n_features=96, epochs=6, seed=1)
FAST_FEATURES = PairFeatureConfig(n_features=64)


@pytest.fixture(scope="module")
def toy_features(request):
    """Synthetic separable features for matcher unit tests."""
    rng = np.random.default_rng(0)
    n = 120
    features = rng.normal(size=(n, 10))
    labels = (features[:, 0] + features[:, 1] > 0).astype(np.int64)
    return features, labels


class TestPairFeatureEncoder:
    def test_dimension_matches_config(self):
        config = PairFeatureConfig(n_features=64)
        encoder = PairFeatureEncoder(config)
        assert encoder.dimension == config.dimension

    def test_encode_shapes(self, toy_dataset, toy_candidates):
        encoder = PairFeatureEncoder(FAST_FEATURES)
        matrix = encoder.encode(toy_dataset, toy_candidates.pairs)
        assert matrix.shape == (len(toy_candidates), encoder.dimension)

    def test_empty_pairs(self, toy_dataset):
        encoder = PairFeatureEncoder(FAST_FEATURES)
        assert encoder.encode(toy_dataset, []).shape == (0, encoder.dimension)

    def test_duplicate_pair_has_higher_similarity_features(self, toy_dataset):
        encoder = PairFeatureEncoder(PairFeatureConfig(n_features=32))
        from repro.data.pairs import RecordPair

        duplicate = encoder.encode_pair(toy_dataset, RecordPair("r1", "r2"))
        unrelated = encoder.encode_pair(toy_dataset, RecordPair("r1", "r6"))
        # The trailing block holds string-similarity features.
        assert duplicate[-6:].mean() > unrelated[-6:].mean()

    def test_interaction_features_optional(self):
        with_interactions = PairFeatureConfig(n_features=32, use_interaction_features=True)
        without = PairFeatureConfig(n_features=32, use_interaction_features=False)
        assert with_interactions.dimension > without.dimension


class TestPairMatcher:
    def test_predict_requires_fit(self):
        with pytest.raises(NotFittedError):
            PairMatcher(FAST_MATCHER).predict(np.zeros((1, 4)))

    def test_fit_validates_inputs(self, toy_features):
        features, labels = toy_features
        matcher = PairMatcher(FAST_MATCHER)
        with pytest.raises(MatchingError):
            matcher.fit(features, labels[:-1])
        with pytest.raises(MatchingError):
            matcher.fit(features[:0], labels[:0])
        with pytest.raises(MatchingError):
            matcher.fit(features, labels + 5)

    def test_learns_separable_problem(self, toy_features):
        features, labels = toy_features
        matcher = PairMatcher(MatcherConfig(hidden_dims=(16,), epochs=30, seed=0))
        matcher.fit(features, labels)
        accuracy = (matcher.predict(features) == labels).mean()
        assert accuracy > 0.85
        assert matcher.history is not None
        assert matcher.history.losses[-1] < matcher.history.losses[0]

    def test_probabilities_in_unit_interval(self, toy_features):
        features, labels = toy_features
        matcher = PairMatcher(FAST_MATCHER).fit(features, labels)
        probabilities = matcher.predict_proba(features)
        assert probabilities.min() >= 0.0 and probabilities.max() <= 1.0

    def test_representation_shape(self, toy_features):
        features, labels = toy_features
        matcher = PairMatcher(FAST_MATCHER).fit(features, labels)
        representations = matcher.representations(features)
        assert representations.shape == (features.shape[0], FAST_MATCHER.representation_dim)

    def test_threshold_changes_predictions(self, toy_features):
        features, labels = toy_features
        matcher = PairMatcher(FAST_MATCHER).fit(features, labels)
        strict = matcher.predict(features, threshold=0.9).sum()
        loose = matcher.predict(features, threshold=0.1).sum()
        assert loose >= strict


class TestMultiLabelMatcher:
    def _multilabel_data(self):
        rng = np.random.default_rng(1)
        features = rng.normal(size=(120, 10))
        narrow = (features[:, 0] > 0.5).astype(np.int64)
        broad = (features[:, 0] > -0.5).astype(np.int64)
        labels = np.stack([narrow, broad], axis=1)
        return features, labels

    def test_requires_intents(self):
        with pytest.raises(MatchingError):
            MultiLabelMatcher(())

    def test_fit_validates_label_shape(self):
        features, labels = self._multilabel_data()
        matcher = MultiLabelMatcher(("a", "b", "c"), FAST_MATCHER)
        with pytest.raises(MatchingError):
            matcher.fit(features, labels)

    def test_learns_both_intents(self):
        features, labels = self._multilabel_data()
        matcher = MultiLabelMatcher(
            ("narrow", "broad"), MatcherConfig(hidden_dims=(16,), epochs=30, seed=0)
        )
        matcher.fit(features, labels)
        predictions = matcher.predict(features)
        accuracy = (predictions == labels).mean()
        assert accuracy > 0.8

    def test_per_intent_predictions_and_representations(self):
        features, labels = self._multilabel_data()
        matcher = MultiLabelMatcher(("narrow", "broad"), FAST_MATCHER).fit(features, labels)
        narrow = matcher.predict_intent(features, "narrow")
        assert narrow.shape == (features.shape[0],)
        reps = matcher.representations(features, "broad")
        assert reps.shape == (features.shape[0], FAST_MATCHER.representation_dim)
        with pytest.raises(MatchingError):
            matcher.predict_intent(features, "unknown")

    def test_intent_weights_validation(self):
        with pytest.raises(MatchingError):
            MultiLabelMatcher(("a", "b"), FAST_MATCHER, intent_weights=np.ones(3))


class TestSolvers:
    def test_naive_reuses_universal_prediction(self, tiny_benchmark):
        split = tiny_benchmark.split
        solver = NaiveSolver(tiny_benchmark.intents, matcher_config=FAST_MATCHER,
                             feature_config=FAST_FEATURES)
        solver.fit(split.train)
        predictions = solver.predict(split.test)
        eq = predictions["equivalence"]
        assert all(np.array_equal(eq, predictions[intent]) for intent in tiny_benchmark.intents)

    def test_naive_rejects_unknown_equivalence_intent(self, tiny_benchmark):
        with pytest.raises(MatchingError):
            NaiveSolver(tiny_benchmark.intents, equivalence_intent="nonexistent")

    def test_in_parallel_predictions_differ_across_intents(self, tiny_benchmark):
        split = tiny_benchmark.split
        solver = InParallelSolver(tiny_benchmark.intents, matcher_config=FAST_MATCHER,
                                  feature_config=FAST_FEATURES)
        solver.fit(split.train)
        predictions = solver.predict(split.test)
        assert set(predictions) == set(tiny_benchmark.intents)
        distinct = {tuple(prediction.tolist()) for prediction in predictions.values()}
        assert len(distinct) > 1

    def test_in_parallel_representations_shapes_and_spaces(self, tiny_benchmark):
        split = tiny_benchmark.split
        solver = InParallelSolver(tiny_benchmark.intents, matcher_config=FAST_MATCHER,
                                  feature_config=FAST_FEATURES)
        solver.fit(split.train)
        representations = solver.representations(split.test)
        shapes = {rep.shape for rep in representations.values()}
        assert shapes == {(len(split.test), FAST_MATCHER.representation_dim)}
        first, second = list(representations.values())[:2]
        assert not np.allclose(first, second)

    def test_multi_label_solver_runs(self, tiny_benchmark):
        split = tiny_benchmark.split
        solver = MultiLabelSolver(tiny_benchmark.intents, matcher_config=FAST_MATCHER,
                                  feature_config=FAST_FEATURES)
        solver.fit(split.train)
        predictions = solver.predict(split.test)
        solution = MIERSolution.from_mapping(split.test, predictions)
        evaluation = evaluate_solution(solution)
        assert 0.0 <= evaluation.mi_f1 <= 1.0

    def test_predict_requires_fit(self, tiny_benchmark):
        solver = InParallelSolver(tiny_benchmark.intents, matcher_config=FAST_MATCHER)
        with pytest.raises(NotFittedError):
            solver.predict(tiny_benchmark.split.test)

    def test_missing_intent_labels_rejected(self, tiny_benchmark, toy_candidates):
        solver = InParallelSolver(tiny_benchmark.intents, matcher_config=FAST_MATCHER)
        with pytest.raises(MatchingError):
            solver.fit(toy_candidates)

    def test_naive_has_lower_recall_than_in_parallel(self, tiny_benchmark):
        """The paper's key observation: one-size-fits-all misses broad intents."""
        split = tiny_benchmark.split
        naive = NaiveSolver(tiny_benchmark.intents, matcher_config=FAST_MATCHER,
                            feature_config=FAST_FEATURES).fit(split.train)
        parallel = InParallelSolver(tiny_benchmark.intents, matcher_config=FAST_MATCHER,
                                    feature_config=FAST_FEATURES).fit(split.train)
        naive_eval = evaluate_solution(
            MIERSolution.from_mapping(split.test, naive.predict(split.test))
        )
        parallel_eval = evaluate_solution(
            MIERSolution.from_mapping(split.test, parallel.predict(split.test))
        )
        assert parallel_eval.mi_recall > naive_eval.mi_recall
