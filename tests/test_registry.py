"""Tests for the component registries and spec round-trips."""

from __future__ import annotations

import pytest

from repro import FlexER, registry
from repro.blocking import FullBlocker, QGramBlocker, TokenBlocker
from repro.config import FlexERConfig, GNNConfig, GraphConfig
from repro.exceptions import MatchingError, RegistryError
from repro.graph import IntentGraphBuilder, IntentNodeClassifier
from repro.matching import InParallelSolver, MultiLabelSolver, NaiveSolver
from repro.pipeline import PipelineRunner, digest
from repro.registry import BLOCKERS, GRAPH_BUILDERS, INTENT_CLASSIFIERS, SOLVERS

INTENTS = ("equivalence", "brand")


class TestNormalization:
    def test_string_flat_and_nested_specs_fingerprint_identically(self):
        as_string = BLOCKERS.normalize("qgram")
        as_flat = BLOCKERS.normalize({"type": "qgram"})
        as_nested = BLOCKERS.normalize({"type": "qgram", "params": {}})
        assert digest(as_string) == digest(as_flat) == digest(as_nested)

    def test_flat_parameters_move_into_params(self):
        spec = BLOCKERS.normalize({"type": "qgram", "q": 3})
        assert spec == {"type": "qgram", "params": {"q": 3}}

    def test_mixing_params_and_flat_parameters_rejected(self):
        with pytest.raises(RegistryError, match="mixes"):
            BLOCKERS.normalize({"type": "qgram", "params": {"q": 3}, "min_shared": 2})

    @pytest.mark.parametrize("bad", [None, 42, {"params": {}}, {"type": ""}, ""])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(RegistryError):
            BLOCKERS.normalize(bad)

    def test_tuples_and_sets_become_sorted_plain_lists(self):
        spec = BLOCKERS.normalize(
            {"type": "token", "attributes": ("title",), "stopwords": {"b", "a"}}
        )
        assert spec["params"]["attributes"] == ["title"]
        assert spec["params"]["stopwords"] == ["a", "b"]


class TestUnknownKeys:
    def test_unknown_blocker_lists_available_components(self):
        with pytest.raises(RegistryError, match="available: full, qgram, token"):
            BLOCKERS.create("sorted_neighborhood")

    def test_unknown_solver_lists_available_components(self):
        with pytest.raises(RegistryError, match="available: in_parallel, multi_label, naive"):
            SOLVERS.create("transformer", intents=INTENTS)

    def test_unknown_family_lists_available_families(self):
        with pytest.raises(RegistryError, match="unknown component family"):
            registry.family("matcher")

    def test_available_lists_all_families(self):
        families = registry.available()
        assert set(families) == {
            "solver",
            "blocker",
            "graph_builder",
            "intent_classifier",
            "executor",
            "candidate_retriever",
            "model",
            "scenario",
        }
        assert registry.available("graph_builder") == ("intent_graph",)
        assert registry.available("executor") == ("serial", "threads", "processes")
        assert registry.available("candidate_retriever") == ("ann_knn", "blocker", "hnsw", "lsh")


class TestRoundTrips:
    @pytest.mark.parametrize(
        "blocker",
        [
            QGramBlocker(q=3, min_shared=2, attributes=("title",)),
            TokenBlocker(min_shared=1, stopwords=frozenset({"the", "a"})),
            FullBlocker(cross_source_only=True, max_records=50),
        ],
    )
    def test_blocker_spec_round_trip_fingerprints_identically(self, blocker):
        spec = BLOCKERS.spec(blocker)
        rebuilt = BLOCKERS.create(spec)
        assert type(rebuilt) is type(blocker)
        assert digest(BLOCKERS.spec(rebuilt)) == digest(spec)

    @pytest.mark.parametrize(
        "solver_cls", [InParallelSolver, MultiLabelSolver, NaiveSolver]
    )
    def test_solver_spec_round_trip_fingerprints_identically(self, solver_cls):
        solver = solver_cls(INTENTS)
        spec = SOLVERS.spec(solver)
        rebuilt = SOLVERS.create(spec, intents=INTENTS)
        assert type(rebuilt) is type(solver)
        assert rebuilt.intents == solver.intents
        assert digest(SOLVERS.spec(rebuilt)) == digest(spec)

    def test_graph_builder_round_trip_carries_config(self):
        builder = IntentGraphBuilder(GraphConfig(k_neighbors=2))
        spec = GRAPH_BUILDERS.spec(builder)
        rebuilt = GRAPH_BUILDERS.create(spec, config=GraphConfig(k_neighbors=2))
        assert rebuilt.config == builder.config
        assert digest(GRAPH_BUILDERS.spec(rebuilt)) == digest(spec)

    def test_classifier_round_trip_carries_config(self):
        classifier = IntentNodeClassifier(GNNConfig(hidden_dim=8))
        spec = INTENT_CLASSIFIERS.spec(classifier)
        rebuilt = INTENT_CLASSIFIERS.create(spec, config=GNNConfig(hidden_dim=8))
        assert rebuilt.config == classifier.config
        assert digest(INTENT_CLASSIFIERS.spec(rebuilt)) == digest(spec)

    def test_config_spec_styles_fingerprint_identically(self):
        by_key = FlexERConfig(solver="multi_label")
        by_dict = FlexERConfig(solver={"type": "multi_label", "params": {}})
        assert digest(by_key.solver) == digest(by_dict.solver)
        assert by_key == by_dict


class TestRegistration:
    def test_register_decorator_and_unregister(self):
        @registry.register("blocker", "_test_noop")
        class NoopBlocker(FullBlocker):
            spec_type = "_test_noop"

        try:
            assert "_test_noop" in BLOCKERS
            built = BLOCKERS.create("_test_noop")
            assert isinstance(built, NoopBlocker)
        finally:
            BLOCKERS.unregister("_test_noop")
        assert "_test_noop" not in BLOCKERS

    def test_duplicate_registration_rejected(self):
        with pytest.raises(RegistryError, match="already registered"):
            BLOCKERS.register("qgram", QGramBlocker)

    def test_component_without_to_spec_rejected_by_spec(self):
        with pytest.raises(RegistryError, match="to_spec"):
            BLOCKERS.spec(object())


class TestBackCompatShims:
    def test_flexer_representation_source_warns_and_maps_to_solver(self):
        with pytest.warns(DeprecationWarning, match="representation_source"):
            flexer = FlexER(INTENTS, representation_source="multi_label")
        assert isinstance(flexer.solver, MultiLabelSolver)
        assert flexer.representation_source == "multi_label"

    def test_flexer_unknown_representation_source_keeps_old_error(self):
        with pytest.raises(MatchingError):
            FlexER(INTENTS, representation_source="transformer")

    def test_runner_representation_source_warns_and_overrides_config(self):
        with pytest.warns(DeprecationWarning, match="representation_source"):
            runner = PipelineRunner(representation_source="multi_label")
        spec = runner._solver_spec(FlexERConfig())
        assert spec["type"] == "multi_label"

    def test_runner_unknown_representation_source_keeps_old_error(self):
        with pytest.raises(MatchingError):
            PipelineRunner(representation_source="transformer")

    def test_config_solver_spec_drives_flexer_without_warning(self):
        flexer = FlexER(INTENTS, FlexERConfig(solver="naive"))
        assert isinstance(flexer.solver, NaiveSolver)
