"""Tests for the synthetic catalog, perturbation, labeling, and sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    AMAZON_MI_LABELER,
    WALMART_AMAZON_LABELER,
    WDC_LABELER,
    CatalogConfig,
    CatalogGenerator,
    PairSampler,
    PerturbationConfig,
    StratumWeights,
    TitlePerturber,
)
from repro.datasets.catalog import Product
from repro.exceptions import ConfigurationError, DataError, LabelingError


def make_product(pid="p1", domain="shoes", brand="Nike", line="Air Max", usage="Running Shoe"):
    return Product(
        product_id=pid,
        domain=domain,
        brand=brand,
        line=line,
        model="7",
        usage=usage,
        category_set=("Clothing Shoes & Jewelry", "Shoes", "Athletic", usage, line),
        title=f"{brand} Men's {line} 7 {usage}",
    )


class TestCatalogGenerator:
    def test_generates_requested_number_of_products(self):
        config = CatalogConfig(domains=("shoes", "books"), products_per_domain=5, seed=1)
        products = CatalogGenerator(config).generate_products()
        assert len(products) == 10
        assert {p.domain for p in products} == {"shoes", "books"}

    def test_product_ids_are_unique(self):
        products = CatalogGenerator(
            CatalogConfig(products_per_domain=10, seed=2)
        ).generate_products()
        assert len({p.product_id for p in products}) == len(products)

    def test_category_set_ends_with_usage_and_line(self):
        products = CatalogGenerator(
            CatalogConfig(domains=("shoes",), products_per_domain=3)
        ).generate_products()
        for product in products:
            assert product.category_set[-1] == product.line
            assert product.category_set[-2] == product.usage

    def test_unknown_domain_rejected(self):
        with pytest.raises(ConfigurationError):
            CatalogConfig(domains=("spaceships",))

    def test_record_titles_first_is_clean(self):
        generator = CatalogGenerator(CatalogConfig(seed=3))
        product = generator.generate_products()[0]
        titles = generator.record_titles(product, copies=3)
        assert titles[0] == product.title
        assert len(titles) == 3

    def test_record_titles_requires_positive_copies(self):
        generator = CatalogGenerator(CatalogConfig(seed=3))
        product = generator.generate_products()[0]
        with pytest.raises(ConfigurationError):
            generator.record_titles(product, copies=0)

    def test_deterministic_given_seed(self):
        first = CatalogGenerator(CatalogConfig(seed=5)).generate_products()
        second = CatalogGenerator(CatalogConfig(seed=5)).generate_products()
        assert [p.title for p in first] == [p.title for p in second]


class TestTitlePerturber:
    def test_perturbation_changes_or_keeps_text(self):
        perturber = TitlePerturber(rng=np.random.default_rng(0))
        title = "Nike Men's Air Max 7 Running Shoe"
        variants = perturber.variants(title, 10)
        assert len(variants) == 10
        assert any(variant != title for variant in variants)

    def test_all_noise_disabled_is_identity(self):
        config = PerturbationConfig(
            p_uppercase_token=0, p_lowercase_all=0, p_typo=0, p_drop_token=0,
            p_swap_tokens=0, p_abbreviate=0, p_add_color_spec=0, p_add_model_suffix=0,
        )
        perturber = TitlePerturber(config, np.random.default_rng(0))
        title = "Nike Air Max"
        assert perturber.perturb(title) == title

    def test_deterministic_given_rng_seed(self):
        title = "Nike Men's Air Max 7 Running Shoe"
        first = TitlePerturber(rng=np.random.default_rng(7)).variants(title, 5)
        second = TitlePerturber(rng=np.random.default_rng(7)).variants(title, 5)
        assert first == second


class TestLabelers:
    def test_equivalence_requires_same_product(self):
        left = make_product("p1")
        right = make_product("p2")
        labels = AMAZON_MI_LABELER.label_pair(left, right)
        assert labels["equivalence"] == 0
        assert AMAZON_MI_LABELER.label_pair(left, make_product("p1"))["equivalence"] == 1

    def test_brand_intent(self):
        nike = make_product("p1", brand="Nike")
        adidas = make_product("p2", brand="Adidas")
        assert AMAZON_MI_LABELER.label_pair(nike, adidas)["brand"] == 0
        assert AMAZON_MI_LABELER.label_pair(nike, make_product("p3", brand="NIKE"))["brand"] == 1

    def test_set_category_threshold(self):
        left = make_product("p1", line="Air Max", usage="Running Shoe")
        same_domain = make_product("p2", line="Lunar Force", usage="Basketball Shoe")
        labels = AMAZON_MI_LABELER.label_pair(left, same_domain)
        # Same domain shares the three root categories: Jaccard 3/7 >= 0.4.
        assert labels["set_category"] == 1

    def test_subsumption_equivalence_implies_brand(self):
        products = CatalogGenerator(
            CatalogConfig(seed=11, products_per_domain=10)
        ).generate_products()
        pairs = [(p, p) for p in products] + list(zip(products, products[1:]))
        assert AMAZON_MI_LABELER.validate_subsumption(pairs, "equivalence", "brand")
        assert AMAZON_MI_LABELER.validate_subsumption(
            pairs, "main_and_set_category", "main_category"
        )

    def test_walmart_amazon_general_category(self):
        camera = make_product("p1", domain="cameras")
        laptop = make_product("p2", domain="computers")
        labels = WALMART_AMAZON_LABELER.label_pair(camera, laptop)
        assert labels["main_category"] == 0
        assert labels["general_category"] == 1  # both electronics

    def test_wdc_general_category_merge(self):
        watch = make_product("p1", domain="watches")
        shoe = make_product("p2", domain="shoes")
        camera = make_product("p3", domain="cameras")
        assert WDC_LABELER.label_pair(watch, shoe)["general_category"] == 1
        assert WDC_LABELER.label_pair(watch, camera)["general_category"] == 0

    def test_wdc_rejects_unknown_domain(self):
        book = make_product("p1", domain="books")
        watch = make_product("p2", domain="watches")
        with pytest.raises(LabelingError):
            WDC_LABELER.label_pair(book, watch)

    def test_intent_names_order(self):
        assert AMAZON_MI_LABELER.intent_names[0] == "equivalence"
        assert len(WALMART_AMAZON_LABELER.intent_names) == 4
        assert len(WDC_LABELER.intent_names) == 3


class TestStratumWeights:
    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            StratumWeights(
                duplicate=-0.1, same_line=0, same_brand=0, same_domain=0, same_general=0, cross=1
            )

    def test_all_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            StratumWeights(0, 0, 0, 0, 0, 0)

    def test_as_dict_keys(self):
        weights = StratumWeights(1, 1, 1, 1, 1, 1)
        assert set(weights.as_dict()) == {
            "duplicate", "same_line", "same_brand", "same_domain", "same_general", "cross",
        }


class TestPairSampler:
    def _sampler(self, seed=0, copies=2):
        generator = CatalogGenerator(CatalogConfig(seed=seed, products_per_domain=10))
        products = generator.generate_products()
        record_products = {}
        counter = 0
        for product in products:
            for title in generator.record_titles(product, copies):
                counter += 1
                record_products[f"r{counter}"] = product
        return PairSampler(record_products, rng=np.random.default_rng(seed))

    def test_requires_records(self):
        with pytest.raises(DataError):
            PairSampler({})

    def test_samples_are_unique_and_bounded(self):
        sampler = self._sampler()
        weights = StratumWeights(0.2, 0.1, 0.1, 0.2, 0.2, 0.2)
        pairs = sampler.sample(100, weights)
        assert len(pairs) <= 100
        assert len(set(pairs)) == len(pairs)

    def test_duplicate_stratum_produces_equivalence_positives(self):
        sampler = self._sampler()
        weights = StratumWeights(1.0, 0, 0, 0, 0, 0)
        pairs = sampler.sample(30, weights)
        assert pairs, "duplicate stratum should produce pairs when copies >= 2"
        for pair in pairs:
            left = sampler.record_products[pair.left_id]
            right = sampler.record_products[pair.right_id]
            assert left.product_id == right.product_id

    def test_cross_stratum_crosses_general_categories(self):
        sampler = self._sampler()
        weights = StratumWeights(0, 0, 0, 0, 0, 1.0)
        pairs = sampler.sample(30, weights)
        for pair in pairs:
            left = sampler.record_products[pair.left_id]
            right = sampler.record_products[pair.right_id]
            assert left.general_category != right.general_category

    def test_invalid_num_pairs(self):
        sampler = self._sampler()
        with pytest.raises(ConfigurationError):
            sampler.sample(0, StratumWeights(1, 1, 1, 1, 1, 1))
