"""Tests for the fault-injection harness and the recovery paths it drives.

The contract under test: with a :class:`~repro.faults.FaultPlan` armed,
every injected failure — a SIGKILLed pool worker, a write torn mid-copy,
a dropped serve connection, a sick backend — is either absorbed by the
stack's own recovery machinery (shard retry, atomic replace, torn-tail
quarantine, reconnect-and-resend, circuit breaking) or surfaces as a
*typed* library exception.  Surviving results must be byte-identical to
a fault-free run.
"""

from __future__ import annotations

import asyncio
import filecmp
import os
import shutil
import warnings
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.config import FlexERConfig, GNNConfig, GraphConfig, MatcherConfig
from repro.data.records import Dataset, Record
from repro.data.serialization import (
    artifact_base_path,
    list_segment_paths,
    read_artifact,
    write_artifact,
)
from repro.datasets import BENCHMARK_LABELERS, load_benchmark
from repro.exceptions import (
    ConfigurationError,
    ConnectionLostError,
    DataError,
    ExecutionError,
    FaultInjectionError,
    ModelError,
    ModelUnavailableError,
    ReproError,
)
from repro.exec import ProcessExecutor, SerialExecutor
from repro.faults import (
    ENV_VAR,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    as_retry_policy,
    inject,
)
from repro.faults import reset as reset_faults
from repro.model import ResolverModel
from repro.pipeline.cache import Artifact, ArtifactCache
from repro.serve import AsyncResolverServer, ModelHealth, ModelRegistry, ServeClient, ServeConfig
from repro.serve.cli import validate_model_paths
from repro.update import TornSegmentWarning


# Top-level so the process pool can pickle them.
def _vector(value):
    """A deterministic array payload for executor byte-identity checks."""
    return np.full(8, float(value), dtype=np.float64) * 1.5


def _square(value):
    return value * value


@pytest.fixture(scope="module")
def robust_world():
    """A small fitted model plus held-out records to upsert and probe."""
    benchmark = load_benchmark("amazon_mi", num_pairs=60, products_per_domain=8, seed=7)
    labeler = BENCHMARK_LABELERS["amazon_mi"]
    products = benchmark.record_products

    def label_pair(left, right):
        return labeler.label_pair(products[left.record_id], products[right.record_id])

    records = list(benchmark.dataset.records)
    holdout = records[-6:]
    corpus = Dataset(
        records=records[:-6],
        name=benchmark.dataset.name,
        attributes=benchmark.dataset.attributes,
    )
    config = FlexERConfig(
        matcher=MatcherConfig(hidden_dims=(24, 12), n_features=96, epochs=2, seed=5),
        graph=GraphConfig(k_neighbors=2),
        gnn=GNNConfig(hidden_dim=16, epochs=4, seed=5),
        blocker={"type": "qgram", "min_shared": 14},
    )
    model = repro.fit(
        corpus, intents=labeler.intent_names, labeler=label_pair, config=config
    )
    return model, holdout


@pytest.fixture(scope="module")
def saved_base(robust_world, tmp_path_factory) -> Path:
    """The fitted model persisted once; tests copy it before mutating."""
    model, _holdout = robust_world
    path = tmp_path_factory.mktemp("faults-model") / "model.npz"
    model.save(path)
    return path


def _copy_model(source: Path, dest_dir: Path) -> Path:
    """Copy a base artifact (plus any segments) into a test-owned dir."""
    base = artifact_base_path(source)
    target = dest_dir / base.name
    shutil.copyfile(base, target)
    for segment in list_segment_paths(base):
        shutil.copyfile(segment, dest_dir / segment.name)
    return target


# --------------------------------------------------------------------- plans


class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(point="x", kind="meteor")

    def test_times_and_after_counters(self):
        plan = FaultPlan([FaultSpec(point="p", kind="exception", times=2, after=1)])
        with plan:
            inject("p")  # skipped by after=1
            with pytest.raises(FaultInjectionError):
                inject("p")
            with pytest.raises(FaultInjectionError):
                inject("p")
            inject("p")  # times=2 exhausted
            inject("unrelated.point")

    def test_point_patterns_glob(self):
        plan = FaultPlan([FaultSpec(point="exec.*", kind="exception", times=None)])
        with plan:
            with pytest.raises(FaultInjectionError):
                inject("exec.encode")
            inject("storage.artifact_write")

    def test_probability_is_seed_deterministic(self):
        spec = dict(point="p", kind="exception", probability=0.5, times=None)
        left = FaultPlan([FaultSpec(**spec)], seed=3)
        right = FaultPlan([FaultSpec(**spec)], seed=3)
        pattern = [left.should_fire("p") is not None for _ in range(64)]
        assert pattern == [right.should_fire("p") is not None for _ in range(64)]
        assert any(pattern) and not all(pattern)

    def test_json_round_trip(self):
        plan = FaultPlan(
            [FaultSpec(point="a.*", kind="slow", seconds=0.1, times=3)],
            seed=9,
            state_dir="/tmp/x",
        )
        rebuilt = FaultPlan.from_json(plan.to_json())
        assert rebuilt.seed == plan.seed
        assert rebuilt.state_dir == plan.state_dir
        assert [spec.to_dict() for spec in rebuilt.specs] == [
            spec.to_dict() for spec in plan.specs
        ]

    def test_context_manager_sets_and_restores_env(self):
        plan = FaultPlan([FaultSpec(point="p")], seed=1)
        before = os.environ.get(ENV_VAR)
        with plan:
            assert os.environ[ENV_VAR] == plan.to_json()
        assert os.environ.get(ENV_VAR) == before

    def test_env_var_arms_inject(self):
        """What subprocess workers do: pick the plan up from the env."""
        plan = FaultPlan([FaultSpec(point="worker.point", kind="exception")])
        saved = os.environ.get(ENV_VAR)
        os.environ[ENV_VAR] = plan.to_json()
        reset_faults()
        try:
            with pytest.raises(FaultInjectionError):
                inject("worker.point")
        finally:
            if saved is None:
                os.environ.pop(ENV_VAR, None)
            else:
                os.environ[ENV_VAR] = saved
            reset_faults()

    def test_state_dir_markers_make_times_cross_process(self, tmp_path):
        spec = FaultSpec(point="p", kind="exception", times=1)
        first = FaultPlan([spec], seed=2, state_dir=str(tmp_path))
        second = FaultPlan([spec], seed=2, state_dir=str(tmp_path))
        assert first.should_fire("p") is not None
        # A second plan instance (standing in for a second process)
        # loses the marker race and must not fire again.
        assert second.should_fire("p") is None
        assert (tmp_path / "fired-0-0").exists()


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.5)

    def test_delays_are_deterministic_and_capped(self):
        policy = RetryPolicy(
            attempts=6, base_delay=0.1, max_delay=0.4, multiplier=2.0, seed=1
        )
        delays = [policy.delay(k) for k in range(1, 6)]
        assert delays == [
            RetryPolicy(
                attempts=6, base_delay=0.1, max_delay=0.4, multiplier=2.0, seed=1
            ).delay(k)
            for k in range(1, 6)
        ]
        assert all(0.0 <= delay <= 0.4 for delay in delays)
        exact = RetryPolicy(attempts=4, base_delay=0.1, max_delay=0.4, jitter=0.0)
        assert [exact.delay(k) for k in range(1, 4)] == [0.1, 0.2, 0.4]

    def test_round_trip_and_normalization(self):
        policy = RetryPolicy(attempts=4, base_delay=0.2)
        assert RetryPolicy.from_dict(policy.to_dict()) == policy
        assert as_retry_policy(None) is None
        assert as_retry_policy(policy) is policy
        assert as_retry_policy({"attempts": 2}) == RetryPolicy(attempts=2)
        assert policy.retries == 3


# ------------------------------------------------------------------ executors


class TestExecutorRetry:
    def test_worker_sigkill_retried_byte_identical(self, tmp_path):
        """The headline guarantee: SIGKILL a pool worker mid-stage and the
        shard retry must reproduce the fault-free bytes exactly."""
        payloads = list(range(6))
        clean = ProcessExecutor(workers=2)
        try:
            expected = clean.map(_vector, payloads)
        finally:
            clean.close()

        state = tmp_path / "state"
        executor = ProcessExecutor(workers=2)
        executor.retry = RetryPolicy(attempts=3, base_delay=0.01)
        plan = FaultPlan(
            [FaultSpec(point="exec.task", kind="crash", times=1)],
            seed=11,
            state_dir=str(state),
        )
        try:
            with plan:
                survived = executor.map(_vector, payloads)
        finally:
            executor.close()
        # The crash actually happened (the dying worker left its marker) …
        assert (state / "fired-0-0").exists()

        # … and the dumped artifacts are byte-identical all the same.
        clean_dump = tmp_path / "clean.npz"
        chaos_dump = tmp_path / "chaos.npz"
        write_artifact(clean_dump, {f"{i:03d}": a for i, a in enumerate(expected)}, {})
        write_artifact(chaos_dump, {f"{i:03d}": a for i, a in enumerate(survived)}, {})
        assert filecmp.cmp(clean_dump, chaos_dump, shallow=False)

    def test_worker_sigkill_without_retry_is_typed(self, tmp_path):
        executor = ProcessExecutor(workers=2)
        plan = FaultPlan(
            [FaultSpec(point="exec.task", kind="crash", times=1)],
            seed=11,
            state_dir=str(tmp_path / "state"),
        )
        try:
            with plan, pytest.raises(ExecutionError):
                executor.map(_vector, list(range(6)))
        finally:
            executor.close()

    def test_serial_executor_retries_exceptions(self):
        executor = SerialExecutor()
        executor.retry = RetryPolicy(attempts=3, base_delay=0.0)
        plan = FaultPlan([FaultSpec(point="exec.task", kind="exception", times=2)])
        with plan:
            assert executor.map(_square, [2, 3]) == [4, 9]

    def test_retry_budget_exhaustion_is_typed(self):
        executor = SerialExecutor()
        executor.retry = RetryPolicy(attempts=2, base_delay=0.0)
        plan = FaultPlan([FaultSpec(point="exec.task", kind="exception", times=None)])
        with plan, pytest.raises(ExecutionError):
            executor.map(_square, [2, 3])


# -------------------------------------------------------------------- storage


class TestCrashSafeStorage:
    def test_interrupted_write_preserves_previous_artifact(self, tmp_path):
        path = tmp_path / "artifact.npz"
        write_artifact(path, {"a": np.arange(4.0)}, {"version": 1})
        plan = FaultPlan(
            [FaultSpec(point="storage.artifact_write", kind="exception", times=1)]
        )
        with plan, pytest.raises(FaultInjectionError):
            write_artifact(path, {"a": np.arange(8.0)}, {"version": 2})
        arrays, metadata = read_artifact(path)
        assert metadata["version"] == 1
        assert np.array_equal(arrays["a"], np.arange(4.0))
        # No temp-file litter either.
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.npz"]

    def test_save_killed_mid_segment_write_keeps_model_loadable(
        self, robust_world, saved_base, tmp_path
    ):
        _model, holdout = robust_world
        path = _copy_model(saved_base, tmp_path)
        worker = ResolverModel.load(path, mmap=False)
        base_count = len(worker.corpus)
        worker.update(upserts=holdout[:2], compact="never")
        plan = FaultPlan(
            [FaultSpec(point="storage.artifact_write", kind="exception", times=1)]
        )
        with plan, pytest.raises(FaultInjectionError):
            worker.save(path)
        # The previous on-disk state survived the mid-write crash.
        reloaded = ResolverModel.load(path, mmap=False)
        assert len(reloaded.corpus) == base_count

    def test_torn_trailing_segment_recovers_on_load(
        self, robust_world, saved_base, tmp_path
    ):
        _model, holdout = robust_world
        path = _copy_model(saved_base, tmp_path)
        worker = ResolverModel.load(path, mmap=False)
        base_count = len(worker.corpus)
        worker.update(upserts=holdout[:2], compact="never")
        worker.save(path)
        (segment,) = list_segment_paths(path)
        payload = segment.read_bytes()
        segment.write_bytes(payload[: len(payload) // 2])

        with pytest.warns(TornSegmentWarning):
            recovered = ResolverModel.load(path, mmap=False)
        # The torn tail was quarantined and the model fell back to the
        # last intact link of the chain (here: the base artifact).
        assert len(recovered.corpus) == base_count
        assert segment.with_name(segment.name + ".torn").exists()
        assert list_segment_paths(path) == []

        # The restarted maintenance job redoes the update cleanly.
        recovered.update(upserts=holdout[:2], compact="never")
        recovered.save(path)
        with warnings.catch_warnings():
            warnings.simplefilter("error", TornSegmentWarning)
            final = ResolverModel.load(path, mmap=False)
        assert len(final.corpus) == base_count + 2

    def test_truncated_raw_artifact_always_raises_typed(self, tmp_path):
        path = tmp_path / "artifact.npz"
        write_artifact(path, {"a": np.arange(32.0), "b": np.ones((4, 4))}, {"k": 1})
        payload = path.read_bytes()
        target = tmp_path / "cut.npz"
        stride = max(1, len(payload) // 97)
        for cut in range(1, len(payload), stride):
            target.write_bytes(payload[:cut])
            try:
                read_artifact(target)
            except DataError:
                pass  # the only acceptable failure: a typed one

    def test_truncated_model_artifacts_load_clean_or_typed(
        self, robust_world, saved_base, tmp_path
    ):
        """The truncation sweep: cut the base artifact and the update
        segment at sampled byte boundaries; every load must either
        succeed (possibly via torn-tail recovery) or raise a typed
        ModelError/DataError — never an unhandled exception."""
        _model, holdout = robust_world
        path = _copy_model(saved_base, tmp_path)
        worker = ResolverModel.load(path, mmap=False)
        worker.update(upserts=holdout[:2], compact="never")
        worker.save(path)
        (segment,) = list_segment_paths(path)

        for victim in (artifact_base_path(path), segment):
            payload = victim.read_bytes()
            stride = max(1, len(payload) // 48)
            for cut in range(1, len(payload), stride):
                victim.write_bytes(payload[:cut])
                torn = victim.with_name(victim.name + ".torn")
                try:
                    with warnings.catch_warnings():
                        warnings.simplefilter("ignore", TornSegmentWarning)
                        ResolverModel.load(path, mmap=False)
                except (ModelError, DataError):
                    pass
                finally:
                    if torn.exists():
                        torn.unlink()
            victim.write_bytes(payload)
        # Intact files restored: the full chain loads without recovery.
        with warnings.catch_warnings():
            warnings.simplefilter("error", TornSegmentWarning)
            ResolverModel.load(path, mmap=False)


# ---------------------------------------------------------------- serve layer


class TestCircuitBreaker:
    def test_opens_after_threshold_and_sheds_with_retry_after(self):
        now = [0.0]
        health = ModelHealth(threshold=3, reset_seconds=10.0, clock=lambda: now[0])
        for _ in range(2):
            health.record_failure()
        assert health.state == ModelHealth.CLOSED and health.allow() is None
        health.record_failure()
        assert health.state == ModelHealth.OPEN
        retry_after = health.allow()
        assert retry_after is not None and 0.0 < retry_after <= 10.0
        assert health.shed_total == 1

    def test_half_open_probe_cycle(self):
        now = [0.0]
        health = ModelHealth(threshold=1, reset_seconds=5.0, clock=lambda: now[0])
        health.record_failure()
        assert health.state == ModelHealth.OPEN
        now[0] = 6.0
        assert health.allow() is None  # the probe is admitted
        assert health.state == ModelHealth.HALF_OPEN
        assert health.allow() is not None  # …but only one at a time
        health.record_failure()  # probe failed: re-open for another cooldown
        assert health.state == ModelHealth.OPEN
        now[0] = 12.0
        assert health.allow() is None
        health.record_success()
        assert health.state == ModelHealth.CLOSED
        assert health.allow() is None

    def test_threshold_zero_disables(self):
        health = ModelHealth(threshold=0, reset_seconds=1.0)
        for _ in range(10):
            health.record_failure()
        assert health.allow() is None

    def test_server_sheds_sick_model_with_typed_error(self, tmp_path):
        """A backend that cannot even load trips the breaker; subsequent
        requests shed fast with ModelUnavailableError + retry-after,
        carried intact over the wire."""

        async def scenario():
            registry = ModelRegistry()
            registry.add(path=tmp_path / "missing.npz", mmap=False)
            server = AsyncResolverServer(
                registry,
                ServeConfig(breaker_failures=2, breaker_reset_seconds=60.0),
            )
            tcp = await server.serve_tcp(host="127.0.0.1", port=0)
            port = tcp.sockets[0].getsockname()[1]
            record = Record(record_id="probe", values={"title": "x"})
            try:
                async with ServeClient("127.0.0.1", port) as client:
                    for _ in range(2):
                        with pytest.raises(ReproError) as excinfo:
                            await client.query([record], k=1)
                        assert not isinstance(
                            excinfo.value, ModelUnavailableError
                        )
                    with pytest.raises(ModelUnavailableError) as excinfo:
                        await client.query([record], k=1)
                    assert excinfo.value.retry_after is not None
                    assert 0.0 < excinfo.value.retry_after <= 60.0
                    stats = await client.stats()
            finally:
                await server.stop()
            return stats

        stats = asyncio.run(scenario())
        assert stats["requests_shed"] == 1


class TestServeClientRetry:
    def test_ping_survives_dropped_connections(self):
        async def scenario():
            server = AsyncResolverServer(ModelRegistry())
            tcp = await server.serve_tcp(host="127.0.0.1", port=0)
            port = tcp.sockets[0].getsockname()[1]
            try:
                client = ServeClient(
                    "127.0.0.1",
                    port,
                    retry=RetryPolicy(attempts=4, base_delay=0.01),
                )
                async with client:
                    return await client.ping()
            finally:
                await server.stop()

        plan = FaultPlan([FaultSpec(point="serve.send", kind="drop", times=2)])
        with plan:
            assert asyncio.run(scenario()) == "pong"

    def test_dropped_connection_without_retry_is_typed(self):
        async def scenario():
            server = AsyncResolverServer(ModelRegistry())
            tcp = await server.serve_tcp(host="127.0.0.1", port=0)
            port = tcp.sockets[0].getsockname()[1]
            try:
                async with ServeClient("127.0.0.1", port) as client:
                    with pytest.raises(ConnectionLostError):
                        await client.ping()
            finally:
                await server.stop()

        plan = FaultPlan([FaultSpec(point="serve.send", kind="drop", times=1)])
        with plan:
            asyncio.run(scenario())


class TestServeCliValidation:
    def test_missing_artifact_fails_fast(self, tmp_path):
        with pytest.raises(SystemExit, match="artifact not found"):
            validate_model_paths([("default", str(tmp_path / "missing.npz"))])

    def test_readable_artifact_passes(self, tmp_path):
        path = tmp_path / "model.npz"
        write_artifact(path, {"a": np.zeros(2)}, {})
        validate_model_paths([("default", str(path))])


# ---------------------------------------------------------------------- cache


class TestCacheColdStartRace:
    def test_put_leaves_published_artifact_untouched(self, tmp_path):
        artifact = Artifact(arrays={"a": np.arange(3.0)}, metadata={"x": 1})
        first = ArtifactCache(tmp_path)
        first.put("stage", "digest", artifact)
        path = first.artifact_path("stage", "digest")
        stamp = path.stat().st_mtime_ns

        # A second process racing the same cold start publishes the same
        # content-addressed bytes; the loser must not rewrite the file.
        second = ArtifactCache(tmp_path)
        second.put("stage", "digest", artifact)
        assert path.stat().st_mtime_ns == stamp
        hit = second.get("stage", "digest")
        assert hit is not None
        assert np.array_equal(hit.arrays["a"], np.arange(3.0))
