"""Tests for the exact nearest-neighbour index (Faiss substitute)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.ann import ExactNearestNeighbors
from repro.exceptions import ConfigurationError


class TestExactNearestNeighbors:
    def test_requires_fit(self):
        with pytest.raises(ConfigurationError):
            ExactNearestNeighbors().search(np.zeros((1, 2)), k=1)

    def test_rejects_invalid_metric_and_chunk(self):
        with pytest.raises(ConfigurationError):
            ExactNearestNeighbors(metric="hamming")
        with pytest.raises(ConfigurationError):
            ExactNearestNeighbors(chunk_size=0)

    def test_nearest_point_is_itself_when_not_excluded(self):
        data = np.array([[0.0, 0.0], [1.0, 1.0], [5.0, 5.0]])
        index = ExactNearestNeighbors().fit(data)
        result = index.search(data, k=1)
        assert result.indices[:, 0].tolist() == [0, 1, 2]
        assert np.allclose(result.distances[:, 0], 0.0)

    def test_exclude_self_skips_the_query_row(self):
        data = np.array([[0.0, 0.0], [1.0, 0.0], [10.0, 0.0]])
        index = ExactNearestNeighbors().fit(data)
        result = index.search(data, k=1, exclude_self=True)
        assert result.indices[0, 0] == 1
        assert result.indices[1, 0] == 0
        assert result.indices[2, 0] == 1

    def test_k_is_capped_by_index_size(self):
        data = np.array([[0.0], [1.0], [2.0]])
        index = ExactNearestNeighbors().fit(data)
        result = index.search(data, k=10, exclude_self=True)
        assert result.indices.shape == (3, 2)

    def test_cosine_metric_prefers_direction(self):
        data = np.array([[1.0, 0.0], [10.0, 0.5], [0.0, 1.0]])
        index = ExactNearestNeighbors(metric="cosine").fit(data)
        result = index.search(np.array([[2.0, 0.0]]), k=1)
        assert result.indices[0, 0] == 0 or result.indices[0, 0] == 1

    def test_chunked_search_matches_unchunked(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(50, 8))
        chunked = ExactNearestNeighbors(chunk_size=7).fit(data).search(data, k=3)
        whole = ExactNearestNeighbors(chunk_size=1024).fit(data).search(data, k=3)
        assert np.array_equal(chunked.indices, whole.indices)
        # Distances agree up to BLAS rounding (block sizes differ per chunk).
        assert np.allclose(chunked.distances, whole.distances)

    def test_chunked_self_exclusion_matches_unchunked(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=(23, 5))
        chunked = ExactNearestNeighbors(chunk_size=4).fit(data).search(
            data, k=4, exclude_self=True
        )
        whole = ExactNearestNeighbors(chunk_size=64).fit(data).search(
            data, k=4, exclude_self=True
        )
        assert np.array_equal(chunked.indices, whole.indices)
        assert all(row not in neighbors for row, neighbors in enumerate(chunked.neighbor_lists()))

    def test_neighbor_lists_matches_neighbors_of(self):
        rng = np.random.default_rng(4)
        data = rng.normal(size=(12, 3))
        result = ExactNearestNeighbors().fit(data).search(data, k=2, exclude_self=True)
        lists = result.neighbor_lists()
        assert lists == [result.neighbors_of(row) for row in range(len(lists))]

    def test_kneighbors_graph_shape(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(10, 4))
        graph = ExactNearestNeighbors().fit(data).kneighbors_graph(k=3)
        assert len(graph) == 10
        assert all(len(neighbors) == 3 for neighbors in graph)
        assert all(row not in neighbors for row, neighbors in enumerate(graph))

    def test_dimensionality_mismatch_rejected(self):
        index = ExactNearestNeighbors().fit(np.zeros((3, 4)))
        with pytest.raises(ConfigurationError):
            index.search(np.zeros((1, 5)), k=1)

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(3, 12), st.integers(2, 5)),
            elements=st.floats(-5, 5, allow_nan=False),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_l2_search_matches_argmin_property(self, data):
        """The top-1 neighbour equals the argmin of pairwise distances."""
        index = ExactNearestNeighbors().fit(data)
        result = index.search(data, k=1, exclude_self=True)
        for row in range(data.shape[0]):
            distances = ((data - data[row]) ** 2).sum(axis=1)
            distances[row] = np.inf
            best = distances.min()
            found = ((data[result.indices[row, 0]] - data[row]) ** 2).sum()
            assert found == pytest.approx(best, abs=1e-9)
