"""Tests for layers, losses, and optimizers of the neural substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, EvaluationError
from repro.nn import (
    MLP,
    Adam,
    Dropout,
    Linear,
    Module,
    Parameter,
    ReLU,
    SGD,
    Sequential,
    Sigmoid,
    Tanh,
    Tensor,
    binary_cross_entropy_with_logits,
    cross_entropy,
    l2_penalty,
    multilabel_weighted_bce,
)


class TestModules:
    def test_linear_shapes(self):
        layer = Linear(4, 3)
        out = layer(Tensor(np.ones((2, 4))))
        assert out.shape == (2, 3)

    def test_linear_without_bias(self):
        layer = Linear(4, 3, bias=False)
        assert layer.bias is None
        assert sum(1 for _ in layer.parameters()) == 1

    def test_parameters_are_collected_recursively(self):
        model = Sequential(Linear(4, 8), ReLU(), Linear(8, 2))
        names = [name for name, _ in model.named_parameters()]
        assert len(names) == 4
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_state_dict_round_trip(self):
        model = MLP(4, (8,), 2)
        state = model.state_dict()
        for parameter in model.parameters():
            parameter.data = parameter.data + 1.0
        model.load_state_dict(state)
        restored = model.state_dict()
        for name in state:
            assert np.allclose(state[name], restored[name])

    def test_load_state_dict_validates(self):
        model = MLP(4, (8,), 2)
        with pytest.raises(KeyError):
            model.load_state_dict({"not.there": np.zeros((1,))})

    def test_train_eval_propagates(self):
        model = Sequential(Dropout(0.5), Linear(2, 2))
        model.eval()
        assert all(not module.training for module in model)
        model.train()
        assert all(module.training for module in model)

    def test_dropout_noop_in_eval(self):
        dropout = Dropout(0.9, seed=1)
        dropout.eval()
        data = np.ones((4, 4))
        assert np.array_equal(dropout(Tensor(data)).numpy(), data)

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_activations(self):
        x = Tensor(np.array([[-1.0, 2.0]]))
        assert np.allclose(ReLU()(x).numpy(), [[0.0, 2.0]])
        assert np.allclose(Tanh()(x).numpy(), np.tanh([[-1.0, 2.0]]))
        assert np.allclose(Sigmoid()(x).numpy(), 1 / (1 + np.exp([[1.0, -2.0]])))

    def test_mlp_hidden_representation_dim(self):
        model = MLP(10, (16, 8), 2)
        hidden = model.hidden_representation(Tensor(np.ones((3, 10))))
        assert hidden.shape == (3, 8)
        assert model(Tensor(np.ones((3, 10)))).shape == (3, 2)

    def test_setattr_registers_parameters(self):
        class Custom(Module):
            def __init__(self):
                super().__init__()
                self.weight = Parameter(np.zeros((2, 2)))

        custom = Custom()
        assert len(list(custom.parameters())) == 1


class TestLosses:
    def test_cross_entropy_prefers_correct_class(self):
        good = cross_entropy(Tensor(np.array([[5.0, -5.0]])), [0]).item()
        bad = cross_entropy(Tensor(np.array([[-5.0, 5.0]])), [0]).item()
        assert good < bad

    def test_cross_entropy_validates_shapes(self):
        with pytest.raises(EvaluationError):
            cross_entropy(Tensor(np.zeros((2, 2))), [0])
        with pytest.raises(EvaluationError):
            cross_entropy(Tensor(np.zeros(3)), [0, 1, 0])

    def test_bce_with_logits_matches_manual(self):
        logits = Tensor(np.array([[0.0], [2.0]]))
        targets = np.array([[0.0], [1.0]])
        loss = binary_cross_entropy_with_logits(logits, targets).item()
        probabilities = 1 / (1 + np.exp(-np.array([0.0, 2.0])))
        manual = -np.mean([np.log(1 - probabilities[0]), np.log(probabilities[1])])
        assert loss == pytest.approx(manual, rel=1e-6)

    def test_multilabel_bce_equal_weights_default(self):
        logits = Tensor(np.zeros((4, 3)))
        targets = np.zeros((4, 3))
        loss = multilabel_weighted_bce(logits, targets).item()
        assert loss == pytest.approx(-np.log(0.5), rel=1e-6)

    def test_multilabel_bce_respects_weights(self):
        logits = Tensor(np.array([[10.0, 10.0]]))
        targets = np.array([[0.0, 1.0]])
        light = multilabel_weighted_bce(logits, targets, [0.1, 1.0]).item()
        heavy = multilabel_weighted_bce(logits, targets, [10.0, 1.0]).item()
        assert heavy > light

    def test_multilabel_bce_validates(self):
        with pytest.raises(EvaluationError):
            multilabel_weighted_bce(Tensor(np.zeros((2, 2))), np.zeros((2, 3)))
        with pytest.raises(EvaluationError):
            multilabel_weighted_bce(Tensor(np.zeros((2, 2))), np.zeros((2, 2)), [1.0])

    def test_l2_penalty(self):
        params = [Tensor(np.array([3.0, 4.0]), requires_grad=True)]
        assert l2_penalty(params, 0.5).item() == pytest.approx(12.5)
        assert l2_penalty([], 0.5).item() == 0.0


class TestOptimizers:
    def _quadratic_step(self, optimizer_factory) -> float:
        parameter = Parameter(np.array([5.0]))
        optimizer = optimizer_factory([parameter])
        for _ in range(200):
            loss = (Tensor(parameter.data, requires_grad=False) * 0).sum()  # placeholder
            optimizer.zero_grad()
            loss_tensor = (parameter * parameter).sum()
            loss_tensor.backward()
            optimizer.step()
        return float(abs(parameter.data[0]))

    def test_sgd_minimizes_quadratic(self):
        final = self._quadratic_step(lambda p: SGD(p, lr=0.1))
        assert final < 1e-3

    def test_sgd_with_momentum_minimizes_quadratic(self):
        final = self._quadratic_step(lambda p: SGD(p, lr=0.05, momentum=0.9))
        assert final < 1e-3

    def test_adam_minimizes_quadratic(self):
        final = self._quadratic_step(lambda p: Adam(p, lr=0.1))
        assert final < 1e-2

    def test_optimizer_requires_parameters(self):
        with pytest.raises(ConfigurationError):
            Adam([])

    def test_invalid_hyperparameters(self):
        parameter = Parameter(np.zeros(1))
        with pytest.raises(ConfigurationError):
            SGD([parameter], lr=-1)
        with pytest.raises(ConfigurationError):
            SGD([parameter], momentum=1.5)
        with pytest.raises(ConfigurationError):
            Adam([parameter], lr=0)
        with pytest.raises(ConfigurationError):
            Adam([parameter], betas=(1.0, 0.9))

    def test_weight_decay_shrinks_parameters(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = SGD([parameter], lr=0.1, weight_decay=0.5)
        loss = (parameter * 0.0).sum()
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        assert abs(parameter.data[0]) < 1.0

    def test_adam_training_mlp_reduces_loss(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(64, 8))
        y = (x[:, 0] + x[:, 1] > 0).astype(np.int64)
        model = MLP(8, (16,), 2, rng=rng)
        optimizer = Adam(model.parameters(), lr=0.01)
        first_loss = None
        for _ in range(60):
            logits = model(Tensor(x))
            loss = cross_entropy(logits, y)
            if first_loss is None:
                first_loss = loss.item()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert loss.item() < first_loss * 0.7
