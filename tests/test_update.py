"""Tests for incremental corpus maintenance (``repro.update``).

The contract under test: a fitted model that absorbs upserts/deletes
through :meth:`ResolverModel.update` must answer **exact-mode** queries
byte-identically to a model freshly fitted on the union corpus with the
same supervision pairs, and **online** queries within tolerance; its
``save()`` must append fingerprint-chained sidecar segments without
touching the base artifact, and ``load()`` must replay them to a
bit-identical model (eagerly or memory-mapped).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.config import FlexERConfig, GNNConfig, GraphConfig, MatcherConfig
from repro.data.pairs import CandidateSet
from repro.data.records import Dataset, Record
from repro.data.splits import DatasetSplit
from repro.data.serialization import (
    list_segment_paths,
    read_artifact,
    read_artifact_lazy,
    segment_path,
    write_artifact,
)
from repro.datasets import BENCHMARK_LABELERS, CorpusChunk, load_benchmark, stream_chunks
from repro.exceptions import DataError, ModelError, UpdateError
from repro.model import ResolverModel
from repro.pipeline import PipelineRunner
from repro.pipeline.cache import ArtifactCache
from repro.registry import MODELS
from repro.update import (
    UPDATE_SEGMENT_KIND,
    CompactionPolicy,
    CorpusDelta,
    DriftMetrics,
    UpdateSegment,
    build_delta,
    corpus_pair_order,
    fingerprint_segment,
)


@pytest.fixture(scope="module")
def update_world():
    """A fitted model plus held-out records to upsert and to probe with."""
    benchmark = load_benchmark("amazon_mi", num_pairs=60, products_per_domain=8, seed=7)
    labeler = BENCHMARK_LABELERS["amazon_mi"]
    products = benchmark.record_products

    def label_pair(left, right):
        return labeler.label_pair(products[left.record_id], products[right.record_id])

    records = list(benchmark.dataset.records)
    holdout = records[-6:]
    corpus = Dataset(
        records=records[:-6],
        name=benchmark.dataset.name,
        attributes=benchmark.dataset.attributes,
    )
    config = FlexERConfig(
        matcher=MatcherConfig(hidden_dims=(24, 12), n_features=96, epochs=2, seed=5),
        graph=GraphConfig(k_neighbors=2),
        gnn=GNNConfig(hidden_dim=16, epochs=4, seed=5),
        # Sparser blocking leaves a few corpus records unreferenced by any
        # split pair, which the delete tests need as safe tombstone targets.
        blocker={"type": "qgram", "min_shared": 14},
    )
    model = repro.fit(
        corpus, intents=labeler.intent_names, labeler=label_pair, config=config
    )
    return model, holdout, corpus


def clone(model: ResolverModel) -> ResolverModel:
    """An independent, mutation-safe copy via the MODELS registry."""
    return MODELS.create(model.to_spec(), arrays=model.payload_arrays())


def fresh_union_fit(model: ResolverModel) -> ResolverModel:
    """A model freshly fitted on the live corpus with the same split pairs."""
    live = Dataset(
        records=[
            record
            for record in model.corpus
            if record.record_id not in model.tombstones
        ],
        name=model.corpus.name,
        attributes=model.corpus.attributes,
    )

    def reanchor(part):
        """Re-anchor one split part's labeled pairs over the union corpus."""
        return CandidateSet(live, pairs=list(part), intents=model.intents)

    split = DatasetSplit(
        train=reanchor(model.split.train),
        valid=reanchor(model.split.valid),
        test=reanchor(model.split.test),
    )
    runner = PipelineRunner(
        cache=ArtifactCache(),
        augment_with_scores=model.augment_with_scores,
        feature_config=model.feature_config,
    )
    return runner.fit_model(
        split, model.intents, config=model.config, retriever=model.retriever_spec
    ).model


def assert_results_identical(left, right):
    """Assert two QueryResults are bit-identical through ``as_arrays``."""
    left_arrays, left_meta = left.as_arrays()
    right_arrays, right_meta = right.as_arrays()
    assert left_meta == right_meta
    assert sorted(left_arrays) == sorted(right_arrays)
    for name, array in left_arrays.items():
        other = right_arrays[name]
        assert array.dtype == other.dtype, name
        assert np.asarray(array).tobytes() == np.asarray(other).tobytes(), name


def unreferenced_corpus_ids(model: ResolverModel) -> list[str]:
    """Corpus record ids no split pair references (safe to delete)."""
    referenced = {
        record_id
        for part in (model.split.train, model.split.valid, model.split.test)
        for pair in part.pairs
        for record_id in (pair.left_id, pair.right_id)
    }
    return [
        record.record_id
        for record in model.corpus
        if record.record_id not in referenced
        and record.record_id not in model.tombstones
    ]


class TestDeltaValidation:
    def test_empty_delta_rejected(self, update_world):
        model, _, _ = update_world
        with pytest.raises(UpdateError):
            build_delta(model.corpus, model.tombstones)

    def test_duplicate_upsert_ids_rejected(self, update_world):
        model, holdout, _ = update_world
        with pytest.raises(UpdateError):
            build_delta(model.corpus, set(), upserts=[holdout[0], holdout[0]])

    def test_unknown_delete_rejected(self, update_world):
        model, _, _ = update_world
        with pytest.raises(UpdateError):
            build_delta(model.corpus, set(), deletes=["no-such-record"])

    def test_upsert_and_delete_of_same_id_rejected(self, update_world):
        model, _, _ = update_world
        record = next(iter(model.corpus))
        with pytest.raises(UpdateError):
            build_delta(
                model.corpus, set(), upserts=[record], deletes=[record.record_id]
            )

    def test_schema_violation_rejected(self, update_world):
        model, _, _ = update_world
        alien = Record(record_id="alien", values={"not_an_attribute": "x"})
        with pytest.raises(UpdateError):
            model.update(upserts=[alien])

    def test_invalid_compact_mode_rejected(self, update_world):
        model, holdout, _ = update_world
        with pytest.raises(UpdateError):
            clone(model).update(upserts=[holdout[0]], compact="sometimes")

    def test_delta_document_round_trip(self, update_world):
        model, holdout, _ = update_world
        dead = unreferenced_corpus_ids(model)[:1]
        delta = build_delta(
            model.corpus, set(), upserts=holdout[:2], deletes=dead
        )
        rebuilt = CorpusDelta.from_document(delta.to_document())
        assert rebuilt == delta


class TestUpsert:
    def test_exact_query_matches_fresh_fit_on_union_corpus(self, update_world):
        model, holdout, corpus = update_world
        updated = clone(model)
        result = updated.update(upserts=holdout[:3], compact="never")
        assert result.upserts == 3
        assert result.added_records == [r.record_id for r in holdout[:3]]
        assert not result.compacted
        assert len(updated.corpus) == len(corpus) + 3

        fresh = fresh_union_fit(updated)
        probes = holdout[3:]
        assert_results_identical(
            updated.query(probes, k=3, mode="exact"),
            fresh.query(probes, k=3, mode="exact"),
        )

    def test_online_query_matches_fresh_fit_within_tolerance(self, update_world):
        model, holdout, _ = update_world
        updated = clone(model)
        updated.update(upserts=holdout[:3], compact="never")
        fresh = fresh_union_fit(updated)
        probes = holdout[3:]
        ours = updated.query(probes, k=3, mode="online")
        theirs = fresh.query(probes, k=3, mode="online")
        assert ours.pairs == theirs.pairs
        # Online inference after incremental maintenance is approximate: the
        # fresh fit may rewire existing kNN graph nodes toward the new pairs,
        # while the delta path only appends edges.  Scores must stay close,
        # not bit-identical (that is the exact-mode contract).
        for intent in updated.intents:
            np.testing.assert_allclose(
                ours.probabilities[intent],
                theirs.probabilities[intent],
                atol=5e-3,
                rtol=5e-2,
            )

    def test_new_records_are_retrievable_and_pairs_appended(self, update_world):
        model, holdout, _ = update_world
        updated = clone(model)
        result = updated.update(upserts=holdout[:3], compact="never")
        new_ids = {r.record_id for r in holdout[:3]}
        assert result.new_pairs
        assert all(
            pair.left_id in new_ids or pair.right_id in new_ids
            for pair in result.new_pairs
        )
        # The per-pair matrices grew by exactly the appended pairs, in order.
        order = corpus_pair_order(updated)
        assert order[-len(result.new_pairs) :] == result.new_pairs
        for intent in updated.intents:
            assert updated.representations[intent].shape[0] == len(order)

    def test_drift_and_describe_reflect_updates(self, update_world):
        model, holdout, _ = update_world
        updated = clone(model)
        base_fingerprint = updated.fingerprint()
        updated.update(upserts=holdout[:2], compact="never")
        drift = updated.drift_metrics()
        assert isinstance(drift, DriftMetrics)
        assert drift.update_generations == 1
        assert 0 < drift.touched_fraction <= 1
        assert drift.tombstone_ratio == 0.0
        description = updated.describe()
        assert description["update_generations"] == 1
        assert description["corpus_live_records"] == len(updated.corpus)
        assert description["base_fingerprint"] == base_fingerprint
        assert description["tombstone_ratio"] == 0.0
        assert description["stale_supervision"] == 0

    def test_untouched_hidden_rows_stay_bit_identical(self, update_world):
        model, holdout, _ = update_world
        updated = clone(model)
        before = {
            intent: [np.array(level) for level in updated.gnn_hiddens[intent]]
            for intent in updated.intents
        }
        result = updated.update(upserts=holdout[:1], compact="never")
        touched = {
            index
            for index, pair in enumerate(corpus_pair_order(updated))
            if pair in set(result.refreshed_pairs)
        }
        # Hidden matrices are layer-major over the pair axis; map old
        # node rows onto their position after the pair axis grew.
        num_layers = len(updated.intents)
        old_pairs = before[updated.intents[0]][0].shape[0] // num_layers
        new_pairs = updated.gnn_hiddens[updated.intents[0]][0].shape[0] // num_layers
        assert new_pairs == old_pairs + len(result.new_pairs)
        untouched = np.asarray(sorted(set(range(old_pairs)) - touched), dtype=np.int64)
        layers = np.arange(num_layers, dtype=np.int64)[:, np.newaxis]
        old_rows = (layers * old_pairs + untouched).ravel()
        new_rows = (layers * new_pairs + untouched).ravel()
        for intent in updated.intents:
            for level, old in enumerate(before[intent]):
                new = updated.gnn_hiddens[intent][level]
                assert np.array_equal(new[new_rows], old[old_rows])


class TestDelete:
    def test_deletes_become_tombstones_filtered_from_retrieval(self, update_world):
        model, holdout, _ = update_world
        updated = clone(model)
        dead = unreferenced_corpus_ids(updated)[:2]
        assert len(dead) == 2, "world must provide unreferenced records"
        result = updated.update(deletes=dead, compact="never")
        assert result.deletes == 2
        assert updated.tombstones == set(dead)
        # Row-order stability: tombstoned records stay in the dataset.
        assert len(updated.corpus) == len(model.corpus)
        probes = holdout[3:]
        answer = updated.query(probes, k=4, mode="online")
        for candidates in answer.candidates_per_record.values():
            assert not set(candidates) & set(dead)

    def test_exact_parity_after_deletes(self, update_world):
        model, holdout, _ = update_world
        updated = clone(model)
        dead = unreferenced_corpus_ids(updated)[:2]
        updated.update(upserts=holdout[:3], deletes=dead, compact="never")
        fresh = fresh_union_fit(updated)
        assert len(fresh.corpus) == len(updated.corpus) - len(dead)
        probes = holdout[3:]
        assert_results_identical(
            updated.query(probes, k=3, mode="exact"),
            fresh.query(probes, k=3, mode="exact"),
        )

    def test_resurrecting_a_tombstoned_record(self, update_world):
        model, _, _ = update_world
        updated = clone(model)
        dead_id = unreferenced_corpus_ids(updated)[0]
        dead_record = next(
            record for record in updated.corpus if record.record_id == dead_id
        )
        updated.update(deletes=[dead_id], compact="never")
        assert dead_id in updated.tombstones
        result = updated.update(upserts=[dead_record], compact="never")
        assert result.resurrected_records == [dead_id]
        assert dead_id not in updated.tombstones

    def test_delete_of_already_tombstoned_record_rejected(self, update_world):
        model, _, _ = update_world
        updated = clone(model)
        dead_id = unreferenced_corpus_ids(updated)[0]
        updated.update(deletes=[dead_id], compact="never")
        with pytest.raises(UpdateError):
            updated.update(deletes=[dead_id], compact="never")


class TestStaleSupervision:
    def test_modifying_a_split_record_marks_supervision_stale(self, update_world):
        model, holdout, _ = update_world
        updated = clone(model)
        referenced_id = updated.split.train.pairs[0].left_id
        original = next(
            record for record in updated.corpus if record.record_id == referenced_id
        )
        modified = Record(
            record_id=referenced_id,
            values={**dict(original.values), "title": "entirely new title"},
            source=original.source,
        )
        result = updated.update(upserts=[modified], compact="never")
        assert result.modified_records == [referenced_id]
        assert updated.drift_metrics().stale_supervision >= 1
        # Exact mode still answers (the stale matcher fit is replayed
        # from the seeded cache); only cross-model parity is forfeited.
        updated.query(holdout[3:], k=2, mode="exact")

    def test_stale_supervision_policy_triggers_compaction(self, update_world):
        model, _, _ = update_world
        updated = clone(model)
        referenced_id = updated.split.train.pairs[0].left_id
        original = next(
            record for record in updated.corpus if record.record_id == referenced_id
        )
        modified = Record(
            record_id=referenced_id,
            values={**dict(original.values), "title": "renamed product"},
            source=original.source,
        )
        result = updated.update(
            upserts=[modified],
            policy=CompactionPolicy(max_stale_supervision=0),
        )
        assert result.compacted
        assert any("stale" in reason for reason in result.compaction_reasons)
        assert updated.drift_metrics().stale_supervision == 0


class TestCompaction:
    def test_small_update_does_not_compact_by_default(self, update_world):
        model, holdout, _ = update_world
        updated = clone(model)
        result = updated.update(upserts=[holdout[0]])
        assert not result.compacted
        assert updated.update_segments

    def test_forced_compaction_rebases_the_model(self, update_world):
        model, holdout, _ = update_world
        updated = clone(model)
        dead = unreferenced_corpus_ids(updated)[:1]
        result = updated.update(
            upserts=holdout[:2], deletes=dead, compact="force"
        )
        assert result.compacted
        assert result.compaction_reasons == ["forced"]
        assert updated.tombstones == set()
        assert updated.update_segments == []
        assert updated.update_pairs == []
        # The refit corpus is the live union: upserts in, deletes out.
        assert len(updated.corpus) == len(model.corpus) + 2 - 1
        probes = holdout[3:]
        assert_results_identical(
            updated.query(probes, k=3, mode="exact"),
            fresh_union_fit(updated).query(probes, k=3, mode="exact"),
        )

    def test_aggressive_policy_compacts_on_drift(self, update_world):
        model, holdout, _ = update_world
        updated = clone(model)
        result = updated.update(
            upserts=[holdout[0]],
            policy=CompactionPolicy(max_touched_fraction=0.0),
        )
        assert result.compacted
        assert any("touched" in reason for reason in result.compaction_reasons)
        assert updated.drift_metrics().touched_fraction == 0.0


class TestSegmentedPersistence:
    def test_save_appends_segments_and_load_replays(self, update_world, tmp_path):
        model, holdout, _ = update_world
        updated = clone(model)
        base = tmp_path / "model.npz"
        updated.save(base)
        base_bytes = base.read_bytes()

        updated.update(upserts=holdout[:2], compact="never")
        updated.save(base)
        assert base.read_bytes() == base_bytes, "base artifact must stay untouched"
        assert [p.name for p in list_segment_paths(base)] == ["model.upd-0001.npz"]

        # A second update appends segment 2 and leaves segment 1 alone.
        segment_one = segment_path(base, 1).read_bytes()
        updated.update(upserts=[holdout[2]], compact="never")
        updated.save(base)
        assert base.read_bytes() == base_bytes
        assert segment_path(base, 1).read_bytes() == segment_one
        assert [p.name for p in list_segment_paths(base)] == [
            "model.upd-0001.npz",
            "model.upd-0002.npz",
        ]

        loaded = ResolverModel.load(base)
        assert loaded.fingerprint() == updated.fingerprint()
        assert loaded.tombstones == updated.tombstones
        assert len(loaded.update_segments) == 2
        probes = holdout[3:]
        assert_results_identical(
            loaded.query(probes, k=3, mode="exact"),
            updated.query(probes, k=3, mode="exact"),
        )

    def test_full_save_to_new_path_restarts_the_chain(self, update_world, tmp_path):
        model, holdout, _ = update_world
        updated = clone(model)
        updated.save(tmp_path / "model.npz")
        updated.update(upserts=holdout[:2], compact="never")
        rebased = tmp_path / "rebased.npz"
        updated.save(rebased)
        # The new artifact contains the applied deltas, so no sidecars.
        assert list_segment_paths(rebased) == []
        assert updated.update_segments == []
        loaded = ResolverModel.load(rebased)
        assert loaded.fingerprint() == updated.fingerprint()

    def test_segment_chain_verification(self, update_world, tmp_path):
        model, holdout, _ = update_world
        updated = clone(model)
        base = tmp_path / "model.npz"
        updated.save(base)
        updated.update(upserts=holdout[:1], compact="never")
        updated.update(upserts=[holdout[1]], compact="never")
        updated.save(base)

        # A gap truncates the chain: without segment 1, segment 2 is
        # unreachable and the base model loads unchanged.
        segment_path(base, 1).rename(tmp_path / "parked.npz")
        assert [p.name for p in list_segment_paths(base)] == []
        assert len(ResolverModel.load(base).corpus) == len(model.corpus)

        # Restoring the file out of order breaks the chain fingerprints.
        (tmp_path / "parked.npz").rename(segment_path(base, 2))
        segment_path(base, 1).write_bytes(segment_path(base, 2).read_bytes())
        with pytest.raises(ModelError):
            ResolverModel.load(base)

    def test_tampered_segment_is_rejected(self, update_world, tmp_path):
        model, holdout, _ = update_world
        updated = clone(model)
        base = tmp_path / "model.npz"
        updated.save(base)
        updated.update(upserts=holdout[:1], compact="never")
        updated.save(base)
        _, metadata = read_artifact(segment_path(base, 1))
        delta = dict(metadata["delta"])
        delta["deletes"] = ["r000000"]
        metadata = {**metadata, "delta": delta}
        write_artifact(segment_path(base, 1), {}, metadata)
        with pytest.raises(UpdateError):
            ResolverModel.load(base)

    def test_compaction_forces_a_full_rewrite(self, update_world, tmp_path):
        model, holdout, _ = update_world
        updated = clone(model)
        base = tmp_path / "model.npz"
        updated.save(base)
        base_bytes = base.read_bytes()
        updated.update(upserts=holdout[:2], compact="force")
        updated.save(base)
        assert base.read_bytes() != base_bytes
        assert list_segment_paths(base) == []
        loaded = ResolverModel.load(base)
        assert loaded.fingerprint() == updated.fingerprint()


class TestLazySegmentedArtifacts:
    def test_segment_files_are_metadata_only_artifacts(self, update_world, tmp_path):
        model, holdout, _ = update_world
        updated = clone(model)
        base = tmp_path / "model.npz"
        updated.save(base)
        updated.update(upserts=holdout[:1], compact="never")
        updated.save(base)
        arrays, metadata = read_artifact_lazy(segment_path(base, 1))
        assert len(arrays) == 0
        assert metadata["kind"] == UPDATE_SEGMENT_KIND
        assert metadata["segment_index"] == 1
        assert metadata["base_fingerprint"] == metadata["parent_fingerprint"]

    def test_mmap_load_is_byte_identical_to_eager_after_updates(
        self, update_world, tmp_path
    ):
        model, holdout, _ = update_world
        updated = clone(model)
        base = tmp_path / "model.npz"
        updated.save(base)
        dead = unreferenced_corpus_ids(updated)[:1]
        updated.update(upserts=holdout[:2], deletes=dead, compact="never")
        updated.save(base)

        eager = ResolverModel.load(base, mmap=False)
        mapped = ResolverModel.load(base, mmap=True)
        eager_arrays = eager.payload_arrays()
        mapped_arrays = mapped.payload_arrays()
        assert sorted(eager_arrays) == sorted(mapped_arrays)
        for name, array in eager_arrays.items():
            other = np.asarray(mapped_arrays[name])
            assert array.dtype == other.dtype, name
            assert np.asarray(array).tobytes() == other.tobytes(), name
        probes = holdout[3:]
        assert_results_identical(
            eager.query(probes, k=3, mode="exact"),
            mapped.query(probes, k=3, mode="exact"),
        )

    def test_legacy_artifact_without_update_state_loads(self, update_world, tmp_path):
        model, holdout, _ = update_world
        document = model._document()
        assert document.pop("update") is not None
        legacy = ResolverModel._restore(document, model.payload_arrays())
        assert legacy.tombstones == set()
        assert legacy.update_pairs == []
        assert_results_identical(
            legacy.query(holdout[3:], k=2, mode="online"),
            model.query(holdout[3:], k=2, mode="online"),
        )

    def test_plain_artifact_has_no_segments(self, update_world, tmp_path):
        model, _, _ = update_world
        base = tmp_path / "model.npz"
        clone(model).save(base)
        assert list_segment_paths(base) == []
        assert ResolverModel.load(base).fingerprint() == model.fingerprint()


class TestSegmentChain:
    def test_fingerprint_chain_is_order_sensitive(self):
        doc = {"upserts": [], "deletes": ["a"]}
        first = fingerprint_segment(1, "base", doc)
        second = fingerprint_segment(2, "base", doc)
        assert first != second
        assert fingerprint_segment(1, first, doc) != first

    def test_segment_metadata_round_trip(self, update_world):
        model, holdout, _ = update_world
        delta = build_delta(model.corpus, set(), upserts=holdout[:1])
        segment = UpdateSegment.build(1, delta, "base-fp", "base-fp")
        rebuilt = UpdateSegment.from_metadata(segment.to_metadata(), source="<mem>")
        assert rebuilt == segment

    def test_wrong_kind_rejected(self, update_world):
        model, holdout, _ = update_world
        delta = build_delta(model.corpus, set(), upserts=holdout[:1])
        metadata = UpdateSegment.build(1, delta, "fp", "fp").to_metadata()
        metadata["kind"] = "something-else"
        with pytest.raises(UpdateError):
            UpdateSegment.from_metadata(metadata, source="<mem>")


class TestRegistryRoundTrip:
    def test_models_registry_round_trips_update_state(self, update_world):
        model, holdout, _ = update_world
        updated = clone(model)
        dead = unreferenced_corpus_ids(updated)[:1]
        updated.update(upserts=holdout[:2], deletes=dead, compact="never")
        twin = MODELS.create(updated.to_spec(), arrays=updated.payload_arrays())
        assert twin.tombstones == updated.tombstones
        assert twin.update_pairs == updated.update_pairs
        assert twin.drift_metrics() == updated.drift_metrics()
        probes = holdout[3:]
        assert_results_identical(
            twin.query(probes, k=3, mode="online"),
            updated.query(probes, k=3, mode="online"),
        )


class TestGenerationCounter:
    def test_sessions_pick_up_updates_without_being_rebuilt(self, update_world):
        model, holdout, _ = update_world
        updated = clone(model)
        session = updated.session()
        probes = holdout[3:]
        before = session.query(probes, k=3, mode="online")
        updated.update(upserts=holdout[:2], compact="never")
        after = session.query(probes, k=3, mode="online")
        # The same session object now answers over the grown corpus.
        fresh_session = updated.session()
        assert_results_identical(after, fresh_session.query(probes, k=3, mode="online"))
        assert len(after.pairs) >= len(before.pairs)


class TestStreamChunks:
    def test_chunking_partitions_in_order(self, update_world):
        _, holdout, _ = update_world
        chunks = list(stream_chunks(holdout, chunk_size=4, start_time=10.0, interval=2.5))
        assert [chunk.index for chunk in chunks] == [0, 1]
        assert [chunk.timestamp for chunk in chunks] == [10.0, 12.5]
        assert [len(chunk) for chunk in chunks] == [4, 2]
        replayed = [record for chunk in chunks for record in chunk.records]
        assert replayed == list(holdout)
        assert all(isinstance(chunk, CorpusChunk) for chunk in chunks)

    def test_dataset_input_and_validation(self, update_world):
        model, _, _ = update_world
        chunks = list(stream_chunks(model.corpus, chunk_size=1000))
        assert len(chunks) == 1 and len(chunks[0]) == len(model.corpus)
        with pytest.raises(DataError):
            list(stream_chunks(model.corpus, chunk_size=0))
        with pytest.raises(DataError):
            list(stream_chunks(model.corpus, chunk_size=1, interval=-1.0))

    def test_streamed_updates_drive_update_and_query(self, update_world):
        model, holdout, _ = update_world
        streamed = clone(model)
        probes = holdout[4:]
        for chunk in stream_chunks(holdout[:4], chunk_size=2):
            result = streamed.update(upserts=chunk.records, compact="never")
            assert result.upserts == len(chunk)
            answer = streamed.query(probes, k=3, mode="online")
            assert set(answer.record_ids) == {r.record_id for r in probes}
        assert streamed.drift_metrics().update_generations == 2

        # Chunked absorption answers exactly like one-shot absorption in
        # exact mode: the transductive replay depends only on the union
        # corpus, not on how the upserts were batched.
        oneshot = clone(model)
        oneshot.update(upserts=holdout[:4], compact="never")
        assert streamed.tombstones == oneshot.tombstones
        assert [r.record_id for r in streamed.corpus] == [
            r.record_id for r in oneshot.corpus
        ]
        assert_results_identical(
            streamed.query(probes, k=3, mode="exact"),
            oneshot.query(probes, k=3, mode="exact"),
        )
        # Online inference may differ slightly between batchings (later
        # chunks see earlier chunks as existing kNN sources), but stays
        # within the incremental-maintenance tolerance.
        ours = streamed.query(probes, k=3, mode="online")
        theirs = oneshot.query(probes, k=3, mode="online")
        assert ours.pairs == theirs.pairs
        for intent in streamed.intents:
            np.testing.assert_allclose(
                ours.probabilities[intent],
                theirs.probabilities[intent],
                atol=5e-3,
                rtol=5e-2,
            )
