"""Tests for the assembled MIER benchmarks (AmazonMI / Walmart-Amazon / WDC analogues)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.blocking import QGramBlocker
from repro.datasets import (
    AMAZON_MI_LABELER,
    PAPER_TABLE4_TEST_POSITIVE_RATES,
    benchmark_names,
    candidate_pairs_from_blocker,
    load_benchmark,
)
from repro.exceptions import ConfigurationError


class TestRegistry:
    def test_names_match_paper_order(self):
        assert benchmark_names() == ("amazon_mi", "walmart_amazon", "wdc")

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ConfigurationError):
            load_benchmark("dblp_acm")

    def test_paper_tables_cover_all_benchmarks(self):
        assert set(PAPER_TABLE4_TEST_POSITIVE_RATES) == set(benchmark_names())


class TestBenchmarkStructure:
    def test_amazon_mi_has_five_intents(self, tiny_benchmark):
        assert len(tiny_benchmark.intents) == 5
        assert tiny_benchmark.intents[0] == "equivalence"

    def test_walmart_amazon_is_clean_clean(self, small_walmart_benchmark):
        benchmark = small_walmart_benchmark
        assert set(benchmark.dataset.sources) == {"walmart", "amazon"}
        for labeled in benchmark.candidates:
            left = benchmark.dataset[labeled.pair.left_id]
            right = benchmark.dataset[labeled.pair.right_id]
            assert left.source != right.source

    def test_wdc_has_three_intents(self, small_wdc_benchmark):
        assert small_wdc_benchmark.intents == ("equivalence", "category", "general_category")

    def test_every_pair_references_existing_records(self, tiny_benchmark):
        for labeled in tiny_benchmark.candidates:
            assert labeled.pair.left_id in tiny_benchmark.dataset
            assert labeled.pair.right_id in tiny_benchmark.dataset

    def test_split_partitions_candidates(self, tiny_benchmark):
        sizes = tiny_benchmark.split.sizes()
        assert sum(sizes.values()) == len(tiny_benchmark.candidates)

    def test_record_products_cover_all_records(self, tiny_benchmark):
        assert set(tiny_benchmark.record_products) == set(tiny_benchmark.dataset.record_ids)

    def test_describe_contains_expected_keys(self, tiny_benchmark):
        stats = tiny_benchmark.describe()
        assert {"name", "num_records", "num_pairs", "intents", "positive_rates"} <= set(stats)


class TestLabelStructure:
    def test_subsumption_equivalence_within_brand(self, tiny_benchmark):
        candidates = tiny_benchmark.candidates
        eq = candidates.labels("equivalence")
        brand = candidates.labels("brand")
        assert not np.any((eq == 1) & (brand == 0))

    def test_subsumption_main_and_set_within_main(self, tiny_benchmark):
        candidates = tiny_benchmark.candidates
        narrow = candidates.labels("main_and_set_category")
        broad = candidates.labels("main_category")
        assert not np.any((narrow == 1) & (broad == 0))

    def test_positive_rates_follow_paper_ordering(self):
        benchmark = load_benchmark("amazon_mi", num_pairs=400, products_per_domain=25, seed=1)
        rates = {
            intent: benchmark.candidates.positive_rate(intent)
            for intent in benchmark.intents
        }
        assert rates["equivalence"] < rates["brand"] < rates["main_category"]
        assert rates["set_category"] <= rates["main_category"]

    def test_wdc_rate_ordering(self, small_wdc_benchmark):
        rates = {
            intent: small_wdc_benchmark.candidates.positive_rate(intent)
            for intent in small_wdc_benchmark.intents
        }
        assert rates["equivalence"] < rates["category"] < rates["general_category"]

    def test_walmart_amazon_rate_ordering(self, small_walmart_benchmark):
        rates = {
            intent: small_walmart_benchmark.candidates.positive_rate(intent)
            for intent in small_walmart_benchmark.intents
        }
        assert rates["equivalence"] < rates["brand"]
        assert rates["main_category"] <= rates["general_category"]

    def test_deterministic_given_seed(self):
        first = load_benchmark("amazon_mi", num_pairs=80, products_per_domain=10, seed=9)
        second = load_benchmark("amazon_mi", num_pairs=80, products_per_domain=10, seed=9)
        assert [p.as_tuple() for p in first.candidates.pairs] == [
            p.as_tuple() for p in second.candidates.pairs
        ]


class TestBlockerIntegration:
    def test_blocker_pairs_can_be_labeled(self, tiny_benchmark):
        blocker = QGramBlocker(q=4, max_block_size=100)
        pairs = blocker.block(tiny_benchmark.dataset)[:50]
        candidates = candidate_pairs_from_blocker(
            tiny_benchmark.dataset,
            tiny_benchmark.record_products,
            AMAZON_MI_LABELER,
            pairs,
        )
        assert len(candidates) == len(pairs)
        assert set(candidates.intents) == set(tiny_benchmark.intents)

    def test_blocking_recovers_duplicates(self, tiny_benchmark):
        """Most equivalence-positive pairs share a 4-gram and survive blocking."""
        blocker = QGramBlocker(q=4, max_block_size=None)
        blocked = set(blocker.block(tiny_benchmark.dataset))
        positives = tiny_benchmark.candidates.positive_pairs("equivalence")
        if positives:
            recovered = sum(1 for pair in positives if pair in blocked)
            assert recovered / len(positives) > 0.8
