"""Tests of the online candidate retrievers (ann_knn / blocker)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.records import Dataset, Record
from repro.exceptions import ConfigurationError, NotFittedError
from repro.registry import CANDIDATE_RETRIEVERS
from repro.retrieval import AnnKnnRetriever, BlockerRetriever


@pytest.fixture
def shoe_corpus() -> Dataset:
    records = [
        Record(record_id="c1", values={"title": "nike air max 2016 running shoe"}),
        Record(record_id="c2", values={"title": "nike air max 2016 running"}),
        Record(record_id="c3", values={"title": "adidas boost primeknit basketball"}),
        Record(record_id="c4", values={"title": "the man who tried to get away"}),
    ]
    return Dataset(records=records, name="shoes", attributes=("title",))


@pytest.fixture
def query_record() -> Record:
    return Record(record_id="q1", values={"title": "nike air max 2016 running shoes"})


class TestAnnKnnRetriever:
    def test_ranks_nearest_first(self, shoe_corpus, query_record):
        retriever = AnnKnnRetriever(n_features=128).fit(shoe_corpus)
        (ids,) = retriever.retrieve([query_record], k=2)
        assert len(ids) == 2
        assert set(ids) <= {"c1", "c2"}

    def test_requires_fit_and_positive_k(self, shoe_corpus, query_record):
        retriever = AnnKnnRetriever()
        with pytest.raises(NotFittedError):
            retriever.retrieve([query_record], k=1)
        retriever.fit(shoe_corpus)
        with pytest.raises(ConfigurationError):
            retriever.retrieve([query_record], k=0)

    def test_excludes_query_id_and_caps_at_corpus(self, shoe_corpus):
        retriever = AnnKnnRetriever().fit(shoe_corpus)
        clone_of_corpus_record = Record(
            record_id="c1", values={"title": "nike air max 2016 running shoe"}
        )
        (ids,) = retriever.retrieve([clone_of_corpus_record], k=10)
        assert "c1" not in ids
        assert len(ids) == len(shoe_corpus) - 1

    def test_cross_source_only_filters_same_source(self):
        records = [
            Record(record_id="w1", values={"title": "nike air max"}, source="walmart"),
            Record(record_id="a1", values={"title": "nike air max"}, source="amazon"),
        ]
        corpus = Dataset(records=records, name="cc", attributes=("title",))
        retriever = AnnKnnRetriever(cross_source_only=True).fit(corpus)
        query = Record(record_id="w9", values={"title": "nike air max"}, source="walmart")
        (ids,) = retriever.retrieve([query], k=5)
        assert ids == ["a1"]

    def test_state_round_trip_is_identical(self, shoe_corpus, query_record):
        fitted = AnnKnnRetriever(n_features=64).fit(shoe_corpus)
        state = fitted.state_arrays()
        restored = AnnKnnRetriever(n_features=64)
        restored.load_state(state, shoe_corpus)
        assert fitted.retrieve([query_record], k=3) == restored.retrieve(
            [query_record], k=3
        )
        assert np.array_equal(state["vectors"], restored.state_arrays()["vectors"])

    def test_registry_round_trip(self, shoe_corpus):
        retriever = CANDIDATE_RETRIEVERS.create(
            {"type": "ann_knn", "metric": "cosine", "n_features": 64}
        )
        spec = CANDIDATE_RETRIEVERS.spec(retriever)
        assert spec["type"] == "ann_knn"
        assert spec["params"]["metric"] == "cosine"
        rebuilt = CANDIDATE_RETRIEVERS.create(spec)
        assert rebuilt.metric == "cosine"
        assert rebuilt.n_features == 64


class TestBlockerRetriever:
    def test_qgram_overlap_ranking(self, shoe_corpus, query_record):
        retriever = BlockerRetriever(blocker={"type": "qgram", "q": 4}).fit(shoe_corpus)
        (ids,) = retriever.retrieve([query_record], k=3)
        # c1/c2 share many 4-grams with the query; the book shares none.
        assert ids[0] in {"c1", "c2"}
        assert "c4" not in ids

    def test_min_shared_threshold_applies(self, shoe_corpus):
        strict = BlockerRetriever(blocker={"type": "token", "min_shared": 3}).fit(
            shoe_corpus
        )
        query = Record(record_id="q2", values={"title": "nike shoe"})
        (ids,) = strict.retrieve([query], k=5)
        # Only records sharing >= 3 tokens survive; "nike shoe" shares at
        # most two tokens with any corpus record.
        assert ids == []

    def test_rejects_blockers_without_an_index(self):
        with pytest.raises(ConfigurationError, match="inverted index"):
            BlockerRetriever(blocker="full")

    def test_registry_round_trip(self):
        retriever = CANDIDATE_RETRIEVERS.create(
            {"type": "blocker", "blocker": {"type": "token", "min_shared": 1}}
        )
        spec = CANDIDATE_RETRIEVERS.spec(retriever)
        assert spec["type"] == "blocker"
        assert spec["params"]["blocker"]["type"] == "token"
        rebuilt = CANDIDATE_RETRIEVERS.create(spec)
        assert rebuilt.blocker.min_shared == 1

    def test_load_state_rebuilds_deterministically(self, shoe_corpus, query_record):
        fitted = BlockerRetriever(blocker={"type": "qgram", "q": 3}).fit(shoe_corpus)
        restored = BlockerRetriever(blocker={"type": "qgram", "q": 3})
        restored.load_state({}, shoe_corpus)
        assert fitted.retrieve([query_record], k=4) == restored.retrieve(
            [query_record], k=4
        )
