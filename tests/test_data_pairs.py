"""Tests for record pairs, labels, and candidate sets."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.data.pairs import CandidateSet, LabeledPair, RecordPair
from repro.data.records import Record
from repro.exceptions import DataError, LabelingError

record_ids = st.text(alphabet="abcdefgh", min_size=1, max_size=4)


class TestRecordPair:
    def test_canonical_order(self):
        assert RecordPair("b", "a") == RecordPair("a", "b")
        assert RecordPair("b", "a").as_tuple() == ("a", "b")

    def test_self_pair_rejected(self):
        with pytest.raises(DataError):
            RecordPair("a", "a")

    def test_empty_id_rejected(self):
        with pytest.raises(DataError):
            RecordPair("", "a")

    def test_of_accepts_records_and_strings(self):
        record = Record("r9", {"title": "x"})
        assert RecordPair.of(record, "r1") == RecordPair("r1", "r9")

    def test_other_returns_the_opposite_member(self):
        pair = RecordPair("a", "b")
        assert pair.other("a") == "b"
        assert pair.other("b") == "a"
        with pytest.raises(DataError):
            pair.other("c")

    @given(left=record_ids, right=record_ids)
    def test_symmetry_property(self, left, right):
        """Pairs are order-insensitive and hash-consistent (property-based)."""
        if left == right:
            with pytest.raises(DataError):
                RecordPair(left, right)
        else:
            assert RecordPair(left, right) == RecordPair(right, left)
            assert hash(RecordPair(left, right)) == hash(RecordPair(right, left))


class TestLabeledPair:
    def test_labels_must_be_binary(self):
        with pytest.raises(LabelingError):
            LabeledPair(RecordPair("a", "b"), {"equivalence": 2})

    def test_label_lookup(self):
        labeled = LabeledPair(RecordPair("a", "b"), {"equivalence": 1, "brand": 0})
        assert labeled.label("equivalence") == 1
        assert labeled.label("brand") == 0
        with pytest.raises(LabelingError):
            labeled.label("unknown")

    def test_intents_property(self):
        labeled = LabeledPair(RecordPair("a", "b"), {"x": 0, "y": 1})
        assert labeled.intents == ("x", "y")


class TestCandidateSet:
    def test_rejects_pairs_outside_dataset(self, toy_dataset):
        candidates = CandidateSet(toy_dataset)
        with pytest.raises(DataError):
            candidates.add(LabeledPair(RecordPair("r1", "zz"), {"equivalence": 0}))

    def test_rejects_duplicate_pairs(self, toy_dataset):
        candidates = CandidateSet(toy_dataset)
        candidates.add(LabeledPair(RecordPair("r1", "r2"), {"equivalence": 1}))
        with pytest.raises(DataError):
            candidates.add(LabeledPair(RecordPair("r2", "r1"), {"equivalence": 1}))

    def test_rejects_inconsistent_intents(self, toy_dataset):
        candidates = CandidateSet(toy_dataset)
        candidates.add(LabeledPair(RecordPair("r1", "r2"), {"equivalence": 1}))
        with pytest.raises(LabelingError):
            candidates.add(LabeledPair(RecordPair("r1", "r3"), {"brand": 1}))

    def test_labels_vector_and_matrix(self, toy_candidates):
        eq = toy_candidates.labels("equivalence")
        brand = toy_candidates.labels("brand")
        assert eq.shape == (len(toy_candidates),)
        matrix = toy_candidates.label_matrix(["equivalence", "brand"])
        assert matrix.shape == (len(toy_candidates), 2)
        assert np.array_equal(matrix[:, 0], eq)
        assert np.array_equal(matrix[:, 1], brand)

    def test_unknown_intent_raises(self, toy_candidates):
        with pytest.raises(LabelingError):
            toy_candidates.labels("category")

    def test_positive_rate_matches_labels(self, toy_candidates):
        rate = toy_candidates.positive_rate("brand")
        assert rate == pytest.approx(toy_candidates.labels("brand").mean())

    def test_positive_pairs_is_golden_resolution(self, toy_candidates):
        golden = toy_candidates.positive_pairs("equivalence")
        assert golden == {RecordPair("r1", "r2")}

    def test_subset_preserves_order(self, toy_candidates):
        subset = toy_candidates.subset([0, 2, 4])
        assert len(subset) == 3
        assert subset.pairs[0] == toy_candidates.pairs[0]
        assert subset.pairs[1] == toy_candidates.pairs[2]

    def test_index_of_and_records_of(self, toy_candidates):
        pair = toy_candidates.pairs[3]
        assert toy_candidates.index_of(pair) == 3
        left, right = toy_candidates.records_of(pair)
        assert {left.record_id, right.record_id} == {pair.left_id, pair.right_id}
        with pytest.raises(DataError):
            toy_candidates.index_of(RecordPair("r2", "r6"))

    def test_describe_contains_positive_rates(self, toy_candidates):
        stats = toy_candidates.describe()
        assert stats["num_pairs"] == len(toy_candidates)
        assert set(stats["positive_rates"]) == {"equivalence", "brand"}

    def test_empty_candidate_set_label_matrix(self, toy_dataset):
        empty = CandidateSet(toy_dataset)
        assert empty.label_matrix().shape == (0, 0)
        assert empty.positive_rate("anything") == 0.0 if not empty.intents else True
