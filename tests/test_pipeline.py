"""Tests of the staged pipeline: fingerprints, caching, and batch grids."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CacheConfig, FlexERConfig, GNNConfig, GraphConfig, MatcherConfig
from repro.data.serialization import read_artifact, write_artifact
from repro.datasets import load_benchmark
from repro.exceptions import DataError, IntentError
from repro.matching import InParallelSolver, MultiLabelSolver
from repro.pipeline import (
    STAGE_GRAPH_BUILD,
    STAGE_MATCHER_FIT,
    STAGE_REPRESENTATION,
    Artifact,
    ArtifactCache,
    BatchRunner,
    PipelineRunner,
    digest,
    fingerprint_candidates,
    k_sweep,
)


@pytest.fixture(scope="module")
def pipeline_benchmark():
    """A small AmazonMI-like benchmark for pipeline tests."""
    return load_benchmark("amazon_mi", num_pairs=110, products_per_domain=10, seed=11)


@pytest.fixture(scope="module")
def pipeline_config() -> FlexERConfig:
    """A fast configuration for staged runs."""
    return FlexERConfig(
        matcher=MatcherConfig(hidden_dims=(20, 10), n_features=80, epochs=3, seed=9),
        graph=GraphConfig(k_neighbors=3),
        gnn=GNNConfig(hidden_dim=12, epochs=6, seed=9),
    )


EQUIVALENCE = "equivalence"


class TestFingerprints:
    def test_digest_is_stable_and_config_sensitive(self, pipeline_config):
        first = digest("stage", pipeline_config)
        second = digest("stage", pipeline_config)
        assert first == second
        changed = FlexERConfig(
            matcher=pipeline_config.matcher,
            graph=GraphConfig(k_neighbors=5),
            gnn=pipeline_config.gnn,
        )
        assert digest("stage", changed) != first

    def test_candidate_fingerprint_is_data_sensitive(self, pipeline_benchmark):
        split = pipeline_benchmark.split
        assert fingerprint_candidates(split.train) == fingerprint_candidates(split.train)
        assert fingerprint_candidates(split.train) != fingerprint_candidates(split.test)
        other = load_benchmark("amazon_mi", num_pairs=110, products_per_domain=10, seed=12)
        assert fingerprint_candidates(split.train) != fingerprint_candidates(other.split.train)

    def test_empty_candidates_fingerprint(self):
        assert fingerprint_candidates(None) == fingerprint_candidates(None)

    def test_digest_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            digest(object())


class TestArtifactIO:
    def test_roundtrip_arrays_and_metadata(self, tmp_path):
        arrays = {
            "plain": np.arange(6, dtype=np.float64).reshape(2, 3),
            "intent::hidden.layer0.weight": np.ones((3, 2)),
        }
        path = write_artifact(tmp_path / "artifact", arrays, {"elapsed_seconds": 1.5})
        loaded, metadata = read_artifact(path)
        assert metadata == {"elapsed_seconds": 1.5}
        assert set(loaded) == set(arrays)
        for key, value in arrays.items():
            assert np.array_equal(loaded[key], value)

    def test_read_missing_artifact_raises(self, tmp_path):
        with pytest.raises(DataError):
            read_artifact(tmp_path / "missing")


class TestSolverStateRoundtrip:
    def test_in_parallel_state_roundtrip(self, pipeline_benchmark, pipeline_config):
        split = pipeline_benchmark.split
        intents = pipeline_benchmark.intents
        solver = InParallelSolver(intents, pipeline_config.matcher).fit(split.train)
        restored = InParallelSolver(intents, pipeline_config.matcher)
        restored.load_state_dict(solver.state_dict())
        for intent in intents:
            assert np.array_equal(
                solver.representations(split.test)[intent],
                restored.representations(split.test)[intent],
            )
            assert np.array_equal(
                solver.predict_proba(split.test)[intent],
                restored.predict_proba(split.test)[intent],
            )

    def test_multi_label_state_roundtrip(self, pipeline_benchmark, pipeline_config):
        split = pipeline_benchmark.split
        intents = pipeline_benchmark.intents
        solver = MultiLabelSolver(intents, pipeline_config.matcher).fit(split.train)
        restored = MultiLabelSolver(intents, pipeline_config.matcher)
        restored.load_state_dict(solver.state_dict())
        for intent in intents:
            assert np.array_equal(
                solver.representations(split.test)[intent],
                restored.representations(split.test)[intent],
            )


class TestPipelineCaching:
    def test_cold_run_computes_every_stage(self, pipeline_benchmark, pipeline_config):
        runner = PipelineRunner()
        result = runner.run(
            pipeline_benchmark.split,
            pipeline_benchmark.intents,
            pipeline_config,
            target_intents=(EQUIVALENCE,),
        )
        assert result.cached_stages == ()
        assert set(result.stage_status()) == {
            STAGE_MATCHER_FIT,
            STAGE_REPRESENTATION,
            STAGE_GRAPH_BUILD,
            f"gnn:{EQUIVALENCE}",
        }

    def test_warm_run_is_fully_cached_and_byte_identical(
        self, pipeline_benchmark, pipeline_config
    ):
        runner = PipelineRunner()
        cold = runner.run(
            pipeline_benchmark.split,
            pipeline_benchmark.intents,
            pipeline_config,
            target_intents=(EQUIVALENCE,),
        )
        warm = runner.run(
            pipeline_benchmark.split,
            pipeline_benchmark.intents,
            pipeline_config,
            target_intents=(EQUIVALENCE,),
        )
        assert warm.computed_stages == ()
        assert np.array_equal(
            cold.solution.probabilities[EQUIVALENCE],
            warm.solution.probabilities[EQUIVALENCE],
        )
        assert np.array_equal(
            cold.solution.prediction(EQUIVALENCE), warm.solution.prediction(EQUIVALENCE)
        )
        assert np.array_equal(cold.graph.features, warm.graph.features)
        assert cold.graph.in_neighbors == warm.graph.in_neighbors
        # Cached timings report the original compute time.
        assert warm.timings.matcher_training_seconds == pytest.approx(
            cold.timings.matcher_training_seconds
        )

    def test_gnn_config_change_keeps_upstream_cached(
        self, pipeline_benchmark, pipeline_config
    ):
        runner = PipelineRunner()
        runner.run(
            pipeline_benchmark.split,
            pipeline_benchmark.intents,
            pipeline_config,
            target_intents=(EQUIVALENCE,),
        )
        changed = FlexERConfig(
            matcher=pipeline_config.matcher,
            graph=pipeline_config.graph,
            gnn=GNNConfig(hidden_dim=12, epochs=7, seed=9),
        )
        result = runner.run(
            pipeline_benchmark.split,
            pipeline_benchmark.intents,
            changed,
            target_intents=(EQUIVALENCE,),
        )
        status = result.stage_status()
        assert status[STAGE_MATCHER_FIT] == "hit"
        assert status[STAGE_REPRESENTATION] == "hit"
        assert status[STAGE_GRAPH_BUILD] == "hit"
        assert status[f"gnn:{EQUIVALENCE}"] == "computed"

    def test_matcher_config_change_invalidates_everything(
        self, pipeline_benchmark, pipeline_config
    ):
        runner = PipelineRunner()
        runner.run(
            pipeline_benchmark.split,
            pipeline_benchmark.intents,
            pipeline_config,
            target_intents=(EQUIVALENCE,),
        )
        changed = FlexERConfig(
            matcher=MatcherConfig(hidden_dims=(20, 10), n_features=80, epochs=4, seed=9),
            graph=pipeline_config.graph,
            gnn=pipeline_config.gnn,
        )
        result = runner.run(
            pipeline_benchmark.split,
            pipeline_benchmark.intents,
            changed,
            target_intents=(EQUIVALENCE,),
        )
        assert result.cached_stages == ()

    def test_data_change_invalidates_everything(self, pipeline_benchmark, pipeline_config):
        runner = PipelineRunner()
        runner.run(
            pipeline_benchmark.split,
            pipeline_benchmark.intents,
            pipeline_config,
            target_intents=(EQUIVALENCE,),
        )
        other = load_benchmark("amazon_mi", num_pairs=110, products_per_domain=10, seed=12)
        result = runner.run(
            other.split,
            other.intents,
            pipeline_config,
            target_intents=(EQUIVALENCE,),
        )
        assert result.cached_stages == ()

    def test_disk_cache_survives_across_runner_instances(
        self, tmp_path, pipeline_benchmark, pipeline_config
    ):
        directory = tmp_path / "artifact-cache"
        cold_runner = PipelineRunner(cache=ArtifactCache(str(directory)))
        cold = cold_runner.run(
            pipeline_benchmark.split,
            pipeline_benchmark.intents,
            pipeline_config,
            target_intents=(EQUIVALENCE,),
        )
        # A fresh cache instance over the same directory — as a separate
        # process would create — serves every stage from disk.
        warm_runner = PipelineRunner(cache=ArtifactCache(str(directory)))
        warm = warm_runner.run(
            pipeline_benchmark.split,
            pipeline_benchmark.intents,
            pipeline_config,
            target_intents=(EQUIVALENCE,),
        )
        assert warm.computed_stages == ()
        assert np.array_equal(
            cold.solution.probabilities[EQUIVALENCE],
            warm.solution.probabilities[EQUIVALENCE],
        )

    def test_disabled_cache_always_recomputes(self, pipeline_benchmark, pipeline_config):
        runner = PipelineRunner(cache=ArtifactCache(CacheConfig(enabled=False)))
        runner.run(
            pipeline_benchmark.split,
            pipeline_benchmark.intents,
            pipeline_config,
            target_intents=(EQUIVALENCE,),
        )
        result = runner.run(
            pipeline_benchmark.split,
            pipeline_benchmark.intents,
            pipeline_config,
            target_intents=(EQUIVALENCE,),
        )
        assert result.cached_stages == ()

    def test_unknown_target_intent_raises(self, pipeline_benchmark, pipeline_config):
        runner = PipelineRunner()
        with pytest.raises(IntentError):
            runner.run(
                pipeline_benchmark.split,
                pipeline_benchmark.intents,
                pipeline_config,
                intent_subset=(EQUIVALENCE,),
                target_intents=("brand",),
            )


class TestPipelineMatchesFlexER:
    def test_pipeline_reproduces_flexer_run(self, pipeline_benchmark, pipeline_config):
        """The staged runner is a refactoring of FlexER.run_split."""
        from repro.core import FlexER

        flexer = FlexER(pipeline_benchmark.intents, pipeline_config)
        split = pipeline_benchmark.split
        flexer.fit(split.train, split.valid if len(split.valid) > 0 else None)
        direct = flexer.predict(split.test, target_intents=(EQUIVALENCE,))
        staged = PipelineRunner().run(
            pipeline_benchmark.split,
            pipeline_benchmark.intents,
            pipeline_config,
            target_intents=(EQUIVALENCE,),
        )
        assert np.array_equal(
            direct.solution.probabilities[EQUIVALENCE],
            staged.solution.probabilities[EQUIVALENCE],
        )
        assert direct.graph.in_neighbors == staged.graph.in_neighbors


class TestBatchRunner:
    def test_k_sweep_skips_matcher_and_representation(
        self, pipeline_benchmark, pipeline_config
    ):
        """The Table-8 acceptance scenario: sweeping ``intra_layer_k``
        through the BatchRunner reuses matcher-fit and representation
        artifacts for every scenario after the first."""
        batch = BatchRunner(PipelineRunner())
        scenarios = k_sweep(pipeline_config, (0, 2, 4), target_intents=(EQUIVALENCE,))
        runs = batch.run(
            pipeline_benchmark.split,
            pipeline_benchmark.intents,
            scenarios,
            dataset="amazon_mi",
        )
        assert len(runs) == 3
        first, *rest = runs
        assert first.result.stage_status()[STAGE_MATCHER_FIT] == "computed"
        for run in rest:
            assert run.skipped_expensive_stages
            assert run.result.stage_status()[STAGE_GRAPH_BUILD] == "computed"
        # Different k values genuinely produce different graphs.
        edge_counts = {run.result.graph.num_edges for run in runs}
        assert len(edge_counts) == len(runs)

    def test_grid_crosses_datasets_and_scenarios(self, pipeline_benchmark, pipeline_config):
        other = load_benchmark("amazon_mi", num_pairs=100, products_per_domain=10, seed=21)
        batch = BatchRunner(PipelineRunner())
        scenarios = k_sweep(pipeline_config, (2, 3), target_intents=(EQUIVALENCE,))
        runs = batch.run_grid(
            {
                "seed11": (pipeline_benchmark.split, pipeline_benchmark.intents),
                "seed21": (other.split, other.intents),
            },
            scenarios,
        )
        assert [run.dataset for run in runs] == ["seed11", "seed11", "seed21", "seed21"]
        rows = BatchRunner.summary_rows(runs)
        assert len(rows) == 4


class TestArtifactCacheUnit:
    def test_stats_and_memory_store(self):
        cache = ArtifactCache()
        assert cache.get("stage", "digest") is None
        cache.put("stage", "digest", Artifact(arrays={"x": np.arange(3)}))
        hit = cache.get("stage", "digest")
        assert hit is not None and np.array_equal(hit.arrays["x"], np.arange(3))
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.puts == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_clear_removes_disk_artifacts(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "cache"))
        cache.put("stage", "digest", Artifact(arrays={"x": np.arange(3)}))
        assert cache.describe()["disk_artifacts"] == 1
        cache.clear()
        assert cache.describe()["disk_artifacts"] == 0
        assert cache.get("stage", "digest") is None
