"""Tests for configuration objects and their validation."""

from __future__ import annotations

import pytest

from repro.config import FlexERConfig, GNNConfig, GraphConfig, MatcherConfig
from repro.exceptions import ConfigurationError


class TestMatcherConfig:
    def test_defaults_are_valid(self):
        config = MatcherConfig()
        assert config.representation_dim == config.hidden_dims[-1]

    def test_representation_dim_is_last_hidden_layer(self):
        config = MatcherConfig(hidden_dims=(64, 32, 16))
        assert config.representation_dim == 16

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"hidden_dims": ()},
            {"hidden_dims": (0,)},
            {"hidden_dims": (-4, 8)},
            {"n_features": 0},
            {"epochs": 0},
            {"batch_size": 0},
            {"learning_rate": 0.0},
            {"weight_decay": -1.0},
        ],
    )
    def test_invalid_values_raise(self, kwargs):
        with pytest.raises(ConfigurationError):
            MatcherConfig(**kwargs)


class TestGraphConfig:
    def test_defaults_are_valid(self):
        config = GraphConfig()
        assert config.k_neighbors > 0
        assert config.metric == "l2"

    def test_k_zero_is_allowed_for_ablation(self):
        assert GraphConfig(k_neighbors=0).k_neighbors == 0

    def test_negative_k_raises(self):
        with pytest.raises(ConfigurationError):
            GraphConfig(k_neighbors=-1)

    def test_unknown_metric_raises(self):
        with pytest.raises(ConfigurationError):
            GraphConfig(metric="manhattan")


class TestGNNConfig:
    def test_two_and_three_layers_allowed(self):
        assert GNNConfig(num_layers=2).num_layers == 2
        assert GNNConfig(num_layers=3).num_layers == 3

    @pytest.mark.parametrize("layers", [1, 4, 0])
    def test_other_layer_counts_raise(self, layers):
        with pytest.raises(ConfigurationError):
            GNNConfig(num_layers=layers)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"hidden_dim": 0},
            {"epochs": 0},
            {"learning_rate": 0},
            {"weight_decay": -0.1},
            {"aggregator": "median"},
        ],
    )
    def test_invalid_values_raise(self, kwargs):
        with pytest.raises(ConfigurationError):
            GNNConfig(**kwargs)


class TestFlexERConfig:
    def test_to_dict_round_trips_sections(self):
        config = FlexERConfig()
        as_dict = config.to_dict()
        assert set(as_dict) == {
            "matcher",
            "graph",
            "gnn",
            "solver",
            "blocker",
            "graph_builder",
            "classifier",
            "executor",
            "retry",
        }
        assert as_dict["graph"]["k_neighbors"] == config.graph.k_neighbors
        assert as_dict["solver"] == {"type": "in_parallel", "params": {}}
        assert as_dict["retry"] is None

    def test_retry_normalizes_and_round_trips(self):
        from repro.faults import RetryPolicy

        config = FlexERConfig(retry={"attempts": 4, "base_delay": 0.01})
        assert isinstance(config.retry, RetryPolicy)
        assert config.retry.attempts == 4
        rebuilt = FlexERConfig.from_dict(config.to_dict())
        assert rebuilt.retry == config.retry
        assert FlexERConfig.from_dict(FlexERConfig().to_dict()).retry is None

    def test_component_specs_normalize_to_canonical_form(self):
        config = FlexERConfig(solver="multi_label", blocker={"type": "qgram", "q": 3})
        assert config.solver == {"type": "multi_label", "params": {}}
        assert config.blocker == {"type": "qgram", "params": {"q": 3}}

    def test_malformed_component_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            FlexERConfig(solver={"params": {}})
        with pytest.raises(ConfigurationError):
            FlexERConfig(blocker=42)

    def test_fast_preset_is_smaller_than_default(self):
        fast = FlexERConfig.fast()
        default = FlexERConfig()
        assert fast.matcher.epochs < default.matcher.epochs
        assert fast.gnn.epochs < default.gnn.epochs
