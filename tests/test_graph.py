"""Tests for the multiplex intent graph, the builder, and GraphSAGE."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import GNNConfig, GraphConfig
from repro.exceptions import GraphConstructionError
from repro.graph import (
    GraphAggregation,
    GraphSAGE,
    IntentGraphBuilder,
    IntentNodeClassifier,
    MultiplexGraph,
    SAGEConvolution,
)
from repro.nn import Tensor


def random_representations(num_pairs=20, dim=8, intents=("a", "b", "c"), seed=0):
    rng = np.random.default_rng(seed)
    return {intent: rng.normal(size=(num_pairs, dim)) for intent in intents}


class TestMultiplexGraph:
    def _graph(self, num_pairs=4, intents=("x", "y")):
        features = np.zeros((len(intents) * num_pairs, 3))
        return MultiplexGraph(intents=tuple(intents), num_pairs=num_pairs, features=features)

    def test_node_indexing_round_trip(self):
        graph = self._graph()
        node = graph.node_index("y", 2)
        assert graph.node_layer(node) == 1
        assert graph.node_pair(node) == 2

    def test_layer_nodes(self):
        graph = self._graph(num_pairs=3, intents=("x", "y"))
        assert graph.layer_nodes("y").tolist() == [3, 4, 5]

    def test_invalid_indices_raise(self):
        graph = self._graph()
        with pytest.raises(GraphConstructionError):
            graph.node_index("z", 0)
        with pytest.raises(GraphConstructionError):
            graph.node_index("x", 99)
        with pytest.raises(GraphConstructionError):
            graph.add_edge(0, 999)

    def test_feature_shape_validation(self):
        with pytest.raises(GraphConstructionError):
            MultiplexGraph(intents=("x",), num_pairs=3, features=np.zeros((2, 3)))

    def test_aggregation_matrix_mean_rows_sum_to_one(self):
        graph = self._graph()
        graph.add_edge(0, 1)
        graph.add_edge(2, 1)
        matrix = graph.aggregation_matrix("mean")
        assert matrix[1].sum() == pytest.approx(1.0)
        assert matrix[0].sum() == 0.0

    def test_aggregation_matrix_sum_mode(self):
        graph = self._graph()
        graph.add_edge(0, 1)
        graph.add_edge(2, 1)
        matrix = graph.aggregation_matrix("sum")
        assert matrix[1].sum() == pytest.approx(2.0)

    def test_describe_counts(self):
        graph = self._graph()
        graph.add_edge(0, 1)
        stats = graph.describe()
        assert stats["num_nodes"] == 8
        assert stats["num_edges"] == 1


class TestIntentGraphBuilder:
    def test_edge_counts_match_paper_formulas(self):
        num_pairs, k = 20, 4
        intents = ("a", "b", "c")
        representations = random_representations(num_pairs, intents=intents)
        builder = IntentGraphBuilder(GraphConfig(k_neighbors=k))
        graph = builder.build(representations)
        assert graph.intra_edge_count == num_pairs * len(intents) * k
        assert graph.inter_edge_count == num_pairs * len(intents) * (len(intents) - 1)
        assert graph.num_nodes == num_pairs * len(intents)

    def test_k_zero_disables_intra_edges(self):
        representations = random_representations()
        graph = IntentGraphBuilder(GraphConfig(k_neighbors=0)).build(representations)
        assert graph.intra_edge_count == 0
        assert graph.inter_edge_count > 0

    def test_inter_layer_edges_optional(self):
        representations = random_representations()
        graph = IntentGraphBuilder(GraphConfig(include_inter_layer=False)).build(representations)
        assert graph.inter_edge_count == 0

    def test_intent_subset_restricts_layers(self):
        representations = random_representations(intents=("a", "b", "c"))
        graph = IntentGraphBuilder(GraphConfig(k_neighbors=2)).build(
            representations, intents=("a", "c")
        )
        assert graph.intents == ("a", "c")
        assert graph.num_nodes == 2 * 20

    def test_intra_edges_connect_within_layer_only(self):
        representations = random_representations(num_pairs=10, intents=("a", "b"))
        graph = IntentGraphBuilder(GraphConfig(k_neighbors=3, include_inter_layer=False)).build(
            representations
        )
        for target, sources in enumerate(graph.in_neighbors):
            for source in sources:
                assert graph.node_layer(source) == graph.node_layer(target)

    def test_inter_edges_connect_same_pair(self):
        representations = random_representations(num_pairs=6, intents=("a", "b", "c"))
        graph = IntentGraphBuilder(GraphConfig(k_neighbors=0)).build(representations)
        for target, sources in enumerate(graph.in_neighbors):
            for source in sources:
                assert graph.node_pair(source) == graph.node_pair(target)
                assert graph.node_layer(source) != graph.node_layer(target)

    def test_mismatched_shapes_rejected(self):
        representations = {"a": np.zeros((5, 4)), "b": np.zeros((6, 4))}
        with pytest.raises(GraphConstructionError):
            IntentGraphBuilder().build(representations)

    def test_missing_intent_rejected(self):
        representations = {"a": np.zeros((5, 4))}
        with pytest.raises(GraphConstructionError):
            IntentGraphBuilder().build(representations, intents=("a", "zzz"))

    def test_report(self):
        representations = random_representations()
        builder = IntentGraphBuilder(GraphConfig(k_neighbors=2))
        graph = builder.build(representations)
        report = builder.report(graph)
        assert report.num_pairs == 20
        assert report.intra_edges == graph.intra_edge_count


class TestGraphAggregation:
    def test_mean_aggregation_matches_dense_matrix(self):
        representations = random_representations(num_pairs=8, intents=("a", "b"))
        graph = IntentGraphBuilder(GraphConfig(k_neighbors=2)).build(representations)
        aggregation = GraphAggregation.from_graph(graph, mode="mean")
        hidden = Tensor(np.random.default_rng(3).normal(size=(graph.num_nodes, 5)))
        sparse = aggregation(hidden).numpy()
        dense = graph.aggregation_matrix("mean") @ hidden.numpy()
        assert np.allclose(sparse, dense)

    def test_self_loops_is_identity(self):
        aggregation = GraphAggregation.self_loops(4)
        hidden = Tensor(np.arange(12, dtype=float).reshape(4, 3))
        assert np.allclose(aggregation(hidden).numpy(), hidden.numpy())

    def test_edge_count(self):
        representations = random_representations(num_pairs=6, intents=("a", "b"))
        graph = IntentGraphBuilder(GraphConfig(k_neighbors=2)).build(representations)
        aggregation = GraphAggregation.from_graph(graph)
        assert aggregation.num_edges == graph.num_edges

    def test_mismatched_edge_arrays_rejected(self):
        with pytest.raises(GraphConstructionError):
            GraphAggregation(np.array([0]), np.array([0, 1]), 2, np.array([1.0]))


class TestGraphSAGE:
    def test_convolution_shapes(self):
        rng = np.random.default_rng(0)
        convolution = SAGEConvolution(4, 6, rng)
        hidden = Tensor(rng.normal(size=(5, 4)))
        out = convolution(hidden, GraphAggregation.self_loops(5))
        assert out.shape == (5, 6)

    def test_model_output_shapes(self):
        config = GNNConfig(hidden_dim=8, epochs=2)
        model = GraphSAGE(in_dim=4, config=config)
        features = Tensor(np.random.default_rng(0).normal(size=(10, 4)))
        aggregation = GraphAggregation.self_loops(10)
        embeddings = model.node_embeddings(features, aggregation)
        logits = model(features, aggregation)
        assert embeddings.shape == (10, 8)
        assert logits.shape == (10, 2)

    def test_three_layer_model_halves_dim(self):
        config = GNNConfig(hidden_dim=8, num_layers=3, epochs=2)
        model = GraphSAGE(in_dim=4, config=config)
        features = Tensor(np.zeros((6, 4)))
        aggregation = GraphAggregation.self_loops(6)
        assert model.node_embeddings(features, aggregation).shape == (6, 4)


class TestIntentNodeClassifier:
    def _labeled_graph(self, seed=0):
        """Graph whose target layer carries a learnable signal."""
        rng = np.random.default_rng(seed)
        num_pairs = 40
        signal = rng.normal(size=(num_pairs, 1))
        labels = (signal[:, 0] > 0).astype(np.int64)
        representations = {
            "target": np.hstack([signal, rng.normal(size=(num_pairs, 5)) * 0.1]),
            "other": rng.normal(size=(num_pairs, 6)),
        }
        graph = IntentGraphBuilder(GraphConfig(k_neighbors=3)).build(representations)
        return graph, labels

    def test_learns_target_layer_signal(self):
        graph, labels = self._labeled_graph()
        train_index = np.arange(0, 30)
        classifier = IntentNodeClassifier(GNNConfig(hidden_dim=16, epochs=40, seed=0))
        result = classifier.fit_predict(
            graph, "target", train_index, labels[train_index]
        )
        test_index = np.arange(30, 40)
        predictions = (result.probabilities[test_index] >= 0.5).astype(int)
        accuracy = (predictions == labels[test_index]).mean()
        assert accuracy >= 0.6
        assert len(result.losses) == 40
        assert result.losses[-1] < result.losses[0]

    def test_validation_selection_and_predict(self):
        graph, labels = self._labeled_graph(seed=1)
        classifier = IntentNodeClassifier(GNNConfig(hidden_dim=8, epochs=10, seed=1))
        result = classifier.fit_predict(
            graph,
            "target",
            train_index=np.arange(0, 25),
            train_labels=labels[:25],
            valid_index=np.arange(25, 32),
            valid_labels=labels[25:32],
        )
        assert 0.0 <= result.best_validation_f1 <= 1.0
        assert classifier.predict().shape == (graph.num_pairs,)

    def test_requires_training_pairs(self):
        graph, labels = self._labeled_graph()
        classifier = IntentNodeClassifier(GNNConfig(epochs=2))
        with pytest.raises(GraphConstructionError):
            classifier.fit_predict(graph, "target", np.array([]), np.array([]))

    def test_predict_before_fit_raises(self):
        classifier = IntentNodeClassifier(GNNConfig(epochs=2))
        from repro.exceptions import NotFittedError

        with pytest.raises(NotFittedError):
            classifier.predict()
