"""Tests of the performance-tracking subsystem (`repro.perf`)."""

from __future__ import annotations

import json

import pytest

from repro.perf import bench as perf_bench
from repro.perf.bench import (
    REPORT_KIND,
    SCHEMA_VERSION,
    PerfWorkload,
    check_regression,
    load_report,
    run_perf_suite,
    write_report,
)
from repro.perf.cli import main as perf_main
from repro.perf.instrument import PerfSession, active_session, observe, profiled, rss_bytes

TINY_WORKLOAD = PerfWorkload(
    name="tiny_unit_test",
    dataset="amazon_mi",
    num_pairs=40,
    products_per_domain=6,
    matcher_epochs=1,
    gnn_epochs=1,
    k_neighbors=2,
    seed=7,
)


class TestInstrumentation:
    def test_rss_is_positive(self):
        assert rss_bytes() > 0

    def test_session_stage_records_wall_and_rss(self):
        session = PerfSession()
        with session.stage("work", items=10):
            sum(range(1000))
        assert len(session.records) == 1
        record = session.records[0]
        assert record.name == "work"
        assert record.wall_seconds >= 0
        assert record.items == 10
        assert record.throughput_items_per_second is not None
        assert record.rss_after_bytes >= record.rss_before_bytes >= 0

    def test_profiled_is_noop_without_session(self):
        calls = []

        @profiled("demo")
        def work(x):
            calls.append(x)
            return x * 2

        assert active_session() is None
        assert work(3) == 6
        assert calls == [3]

    def test_profiled_records_into_active_session(self):
        @profiled("demo", items_from=lambda n: n)
        def work(n):
            return n

        session = PerfSession()
        with session.activate():
            assert active_session() is session
            work(5)
            work(7)
        assert active_session() is None
        assert session.stage_names() == ["demo"]
        assert [record.items for record in session.records] == [5, 7]

    def test_observe_reports_to_active_session_only(self):
        observe("ignored", 1.0)  # no active session: silently dropped
        session = PerfSession()
        with session.activate():
            observe("stage", 0.25, items=4)
        assert session.total_seconds("stage") == 0.25
        assert session.as_dicts()[0]["name"] == "stage"

    def test_nested_sessions_record_into_innermost(self):
        outer, inner = PerfSession(), PerfSession()
        with outer.activate():
            with inner.activate():
                observe("x", 1.0)
        assert inner.total_seconds() == 1.0
        assert outer.total_seconds() == 0.0


class TestFlexerTimingsHooks:
    def test_record_stage_feeds_session_and_fields(self):
        from repro.core import FlexERTimings

        timings = FlexERTimings()
        session = PerfSession()
        with session.activate():
            timings.record_stage("matcher-fit", 1.0)
            timings.record_stage("representation", 2.0)
            timings.record_stage("graph-build", 3.0)
            timings.record_stage("gnn", 4.0, intent="equivalence")
        assert timings.matcher_training_seconds == 1.0
        assert timings.gnn_seconds_per_intent == {"equivalence": 4.0}
        assert timings.total_seconds == 10.0
        assert session.stage_names() == [
            "flexer:matcher-fit",
            "flexer:representation",
            "flexer:graph-build",
            "flexer:gnn:equivalence",
        ]
        as_dict = timings.as_dict()
        assert as_dict["total_seconds"] == 10.0

    def test_record_stage_rejects_unknown_stage(self):
        from repro.core import FlexERTimings

        with pytest.raises(ValueError):
            FlexERTimings().record_stage("nope", 1.0)


@pytest.fixture(scope="module")
def suite_report():
    """One tiny suite run shared by the report/regression/CLI tests."""
    return run_perf_suite(workloads=(TINY_WORKLOAD,), compare_reference=True)


class TestPerfSuite:
    def test_report_schema(self, suite_report):
        assert suite_report["schema_version"] == SCHEMA_VERSION
        assert suite_report["kind"] == REPORT_KIND
        assert suite_report["summary"]["num_workloads"] == 1
        entry = suite_report["workloads"][0]
        assert entry["workload"]["name"] == "tiny_unit_test"
        assert entry["vectorized"]["end_to_end_wall_seconds"] > 0
        assert entry["reference"]["end_to_end_wall_seconds"] > 0
        assert entry["end_to_end_speedup"] > 0
        stage_names = {stage["name"] for stage in entry["vectorized"]["stages"]}
        assert "pipeline-cold" in stage_names
        assert "blocking-end-to-end" in stage_names
        assert any(name.startswith("flexer:") for name in stage_names)

    def test_kernels_are_equivalent(self, suite_report):
        kernels = suite_report["workloads"][0]["kernels"]
        names = {kernel["name"] for kernel in kernels}
        assert {
            "pair-feature-encode",
            "qgram-block-join",
            "graph-edge-construction",
            "levenshtein-batch",
        } <= names
        assert all(kernel["equivalent"] for kernel in kernels)

    def test_report_is_json_serializable_and_round_trips(self, suite_report, tmp_path):
        path = write_report(suite_report, tmp_path / "BENCH_perf.json")
        loaded = load_report(path)
        assert loaded["summary"] == json.loads(json.dumps(suite_report["summary"]))

    def test_load_report_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text("{}", encoding="utf-8")
        with pytest.raises(ValueError):
            load_report(path)


class TestRegressionCheck:
    def test_no_regression_against_itself(self, suite_report):
        assert check_regression(suite_report, suite_report) == []

    def test_detects_wall_time_regression(self, suite_report):
        slower = json.loads(json.dumps(suite_report))
        entry = slower["workloads"][0]["vectorized"]
        entry["end_to_end_wall_seconds"] = entry["end_to_end_wall_seconds"] * 10
        problems = check_regression(slower, suite_report, max_regression=0.5)
        assert len(problems) == 1
        assert "regressed" in problems[0]

    def test_schema_mismatch_is_flagged(self, suite_report):
        other = json.loads(json.dumps(suite_report))
        other["schema_version"] = SCHEMA_VERSION + 1
        problems = check_regression(other, suite_report)
        assert problems and "schema version" in problems[0]

    def test_disjoint_workloads_are_flagged(self, suite_report):
        other = json.loads(json.dumps(suite_report))
        other["workloads"][0]["workload"]["name"] = "different"
        problems = check_regression(other, suite_report)
        assert problems and "no workloads in common" in problems[0]


class TestCli:
    @pytest.fixture(autouse=True)
    def tiny_smoke(self, monkeypatch):
        monkeypatch.setattr(perf_bench, "SMOKE_WORKLOADS", (TINY_WORKLOAD,))

    def test_cli_writes_report_and_passes_check(self, tmp_path, capsys):
        output = tmp_path / "BENCH_perf.json"
        assert perf_main(["--smoke", "--output", str(output), "--no-reference"]) == 0
        report = load_report(output)
        assert report["smoke"] is True
        assert "end_to_end_speedup" not in report["workloads"][0]
        assert "report written" in capsys.readouterr().out

    def test_cli_regression_exit_code(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        assert perf_main(["--smoke", "--output", str(baseline_path), "--no-reference"]) == 0
        baseline = load_report(baseline_path)
        baseline["workloads"][0]["vectorized"]["end_to_end_wall_seconds"] = 1e-9
        baseline["summary"]["end_to_end_wall_seconds"] = 1e-9
        write_report(baseline, baseline_path)
        exit_code = perf_main(
            [
                "--smoke",
                "--output",
                str(tmp_path / "current.json"),
                "--no-reference",
                "--check-against",
                str(baseline_path),
            ]
        )
        assert exit_code == 2
