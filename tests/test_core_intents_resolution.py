"""Tests for intents, intent relationships, resolutions, and clean views."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Intent, IntentSet, MIERProblem, MIERSolution, Resolution
from repro.data.pairs import RecordPair
from repro.exceptions import DataError, EvaluationError, IntentError


class TestIntent:
    def test_requires_name(self):
        with pytest.raises(IntentError):
            Intent(name="")

    def test_description_optional(self):
        assert Intent(name="brand").description == ""


class TestIntentSet:
    def test_duplicate_names_rejected(self):
        with pytest.raises(IntentError):
            IntentSet(["brand", "brand"])

    def test_empty_rejected(self):
        with pytest.raises(IntentError):
            IntentSet([])

    def test_names_and_lookup(self):
        intents = IntentSet(["equivalence", Intent("brand", "same brand")])
        assert intents.names == ("equivalence", "brand")
        assert intents.get("brand").description == "same brand"
        with pytest.raises(IntentError):
            intents.get("category")
        assert "brand" in intents and "missing" not in intents

    def test_relationships_from_labels(self, toy_candidates):
        intents = IntentSet.from_candidates(toy_candidates)
        relationships = intents.relationships(toy_candidates)
        # The toy labels make equivalence a sub-intent of brand (Def. 4)
        assert relationships.is_sub_intent("equivalence", "brand")
        assert not relationships.is_sub_intent("brand", "equivalence")
        # They overlap because (r1, r2) is positive for both (Def. 3)
        assert relationships.overlapping("equivalence", "brand")

    def test_relationships_on_benchmark(self, tiny_benchmark):
        intents = IntentSet.from_candidates(tiny_benchmark.candidates)
        relationships = intents.relationships(tiny_benchmark.candidates)
        assert relationships.is_sub_intent("equivalence", "brand")
        assert relationships.is_sub_intent("main_and_set_category", "main_category")

    def test_relationships_require_labels(self, toy_candidates):
        intents = IntentSet(["equivalence", "brand", "missing"])
        with pytest.raises(IntentError):
            intents.relationships(toy_candidates)

    def test_from_names_with_descriptions(self):
        intents = IntentSet.from_names(["a", "b"], {"a": "first"})
        assert intents.get("a").description == "first"


class TestResolution:
    def test_from_predictions_requires_alignment(self, toy_candidates):
        with pytest.raises(DataError):
            Resolution.from_predictions(toy_candidates, [1, 0])

    def test_from_predictions_collects_positive_pairs(self, toy_candidates):
        predictions = np.zeros(len(toy_candidates), dtype=int)
        predictions[0] = 1
        resolution = Resolution.from_predictions(toy_candidates, predictions, "equivalence")
        assert len(resolution) == 1
        assert toy_candidates.pairs[0] in resolution

    def test_from_labels_matches_positive_pairs(self, toy_candidates):
        golden = Resolution.from_labels(toy_candidates, "brand")
        assert golden.pairs == toy_candidates.positive_pairs("brand")

    def test_satisfaction_definition(self, toy_candidates):
        mapping = {f"r{i}": f"e{i}" for i in range(1, 7)}
        mapping["r2"] = "e1"  # r1 and r2 are the same entity
        resolution = Resolution({RecordPair("r1", "r2")}, "equivalence")
        assert resolution.satisfies(mapping, toy_candidates.pairs)
        # Removing the matched pair breaks satisfaction.
        assert not Resolution(set(), "equivalence").satisfies(mapping, toy_candidates.pairs)
        # Adding a wrong pair breaks satisfaction too.
        wrong = Resolution({RecordPair("r1", "r2"), RecordPair("r1", "r6")}, "equivalence")
        assert not wrong.satisfies(mapping, toy_candidates.pairs)

    def test_clusters_transitive_closure(self, toy_dataset):
        resolution = Resolution({RecordPair("r1", "r2"), RecordPair("r2", "r3")})
        clusters = resolution.clusters(toy_dataset)
        cluster_of_r1 = next(c for c in clusters if "r1" in c)
        assert cluster_of_r1 == {"r1", "r2", "r3"}
        assert {"r6"} in clusters

    def test_clean_view_keeps_first_representative(self, toy_dataset):
        resolution = Resolution({RecordPair("r1", "r2"), RecordPair("r2", "r3")})
        clean = resolution.clean_view(toy_dataset)
        assert clean.record_ids == ["r1", "r4", "r5", "r6"]

    def test_clean_view_of_empty_resolution_is_identity(self, toy_dataset):
        clean = Resolution(set()).clean_view(toy_dataset)
        assert clean.record_ids == toy_dataset.record_ids

    def test_describe(self):
        resolution = Resolution({RecordPair("a", "b")}, intent="brand")
        assert resolution.describe() == {"intent": "brand", "num_matched_pairs": 1}


class TestMIERProblemAndSolution:
    def test_problem_validates_intents(self, toy_candidates):
        with pytest.raises(IntentError):
            MIERProblem(toy_candidates, ("equivalence", "category"))
        problem = MIERProblem(toy_candidates, ("equivalence", "brand"))
        assert problem.num_pairs == len(toy_candidates)
        golden = problem.golden_resolutions()
        assert set(golden) == {"equivalence", "brand"}

    def test_solution_validates_prediction_lengths(self, toy_candidates):
        with pytest.raises(EvaluationError):
            MIERSolution(toy_candidates, {"equivalence": np.array([1, 0])})

    def test_solution_resolutions_and_matrix(self, toy_candidates):
        n = len(toy_candidates)
        solution = MIERSolution(
            toy_candidates,
            predictions={
                "equivalence": np.zeros(n, dtype=int),
                "brand": np.ones(n, dtype=int),
            },
        )
        assert len(solution.resolution("brand")) == n
        assert solution.prediction_matrix().shape == (n, 2)
        assert set(solution.resolutions()) == {"equivalence", "brand"}
        with pytest.raises(IntentError):
            solution.prediction("category")
