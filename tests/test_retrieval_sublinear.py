"""Tests of the sub-linear candidate retrievers (hnsw / lsh).

The contract suite runs identically over both retrievers: admissibility
filtering, tombstones, delta updates, batch-order independence, and
byte-identical persistence round-trips (including memory-mapped
loading).  Retriever-specific classes cover what differs — LSH's
fresh-fit bit-identity under deltas, HNSW's seeded level hierarchy —
and the model-level class exercises the retrievers through
``repro.fit`` / ``save`` / ``load`` / ``update``.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.ann import seeded_levels
from repro.data.records import Dataset, Record
from repro.data.serialization import read_artifact_lazy, write_artifact
from repro.datasets import BENCHMARK_LABELERS, load_benchmark
from repro.datasets.scale import ScaleWorkloadConfig, make_scale_workload
from repro.evaluation import evaluate_candidates
from repro.exceptions import ConfigurationError, NotFittedError
from repro.registry import CANDIDATE_RETRIEVERS
from repro.retrieval import AnnKnnRetriever, HnswRetriever, LshRetriever

RETRIEVER_NAMES = ("hnsw", "lsh")


def make_retriever(name: str, **overrides):
    """A small-corpus-friendly instance of the named retriever."""
    if name == "hnsw":
        return HnswRetriever(n_features=64, ef_search=64, **overrides)
    # Short bands keep buckets populated on the few-hundred-record
    # corpora of this suite (the defaults target million-record scale).
    return LshRetriever(n_features=64, num_bands=48, rows_per_band=6, **overrides)


@pytest.fixture(scope="module")
def cluster_world():
    """A 400-record clustered corpus plus out-of-corpus query records."""
    workload = make_scale_workload(
        ScaleWorkloadConfig(num_records=400, num_queries=30, seed=1)
    )
    return workload.corpus, list(workload.queries)


@pytest.fixture
def tiny_corpus() -> Dataset:
    records = [
        Record(record_id="c1", values={"title": "nike air max 2016 running shoe"}),
        Record(record_id="c2", values={"title": "nike air max 2016 running"}),
        Record(record_id="c3", values={"title": "adidas boost primeknit basketball"}),
    ]
    return Dataset(records=records, name="tiny", attributes=("title",))


@pytest.fixture
def query_record() -> Record:
    return Record(record_id="q1", values={"title": "nike air max 2016 running shoes"})


@pytest.mark.parametrize("name", RETRIEVER_NAMES)
class TestSublinearContract:
    def test_recall_against_exact_oracle(self, name, cluster_world):
        corpus, queries = cluster_world
        oracle = AnnKnnRetriever(n_features=64).fit(corpus)
        retriever = make_retriever(name).fit(corpus)
        quality = evaluate_candidates(retriever, oracle, queries, ks=(10,))
        assert quality.recall[10] >= 0.85
        assert quality.empty_candidate_queries == 0

    def test_requires_fit_and_positive_k(self, name, tiny_corpus, query_record):
        retriever = make_retriever(name)
        with pytest.raises(NotFittedError):
            retriever.retrieve([query_record], k=1)
        retriever.fit(tiny_corpus)
        with pytest.raises(ConfigurationError):
            retriever.retrieve([query_record], k=0)
        assert retriever.retrieve([], k=3) == []

    def test_excludes_query_self_id(self, name, tiny_corpus):
        retriever = make_retriever(name).fit(tiny_corpus)
        clone = Record(record_id="c1", values={"title": "nike air max 2016 running shoe"})
        (ids,) = retriever.retrieve([clone], k=10)
        assert "c1" not in ids

    def test_corpus_smaller_than_k(self, name, tiny_corpus, query_record):
        retriever = make_retriever(name).fit(tiny_corpus)
        (ids,) = retriever.retrieve([query_record], k=50)
        assert len(ids) <= len(tiny_corpus)
        assert len(set(ids)) == len(ids)
        singleton = Dataset(
            records=[Record(record_id="only", values={"title": "nike air max"})],
            name="one",
            attributes=("title",),
        )
        lone = make_retriever(name).fit(singleton)
        (ids,) = lone.retrieve([query_record], k=10)
        assert ids in ([], ["only"])

    def test_cross_source_only_filters_same_source(self, name):
        records = [
            Record(record_id="w1", values={"title": "nike air max"}, source="walmart"),
            Record(record_id="a1", values={"title": "nike air max"}, source="amazon"),
        ]
        corpus = Dataset(records=records, name="cc", attributes=("title",))
        retriever = make_retriever(name, cross_source_only=True).fit(corpus)
        query = Record(record_id="w9", values={"title": "nike air max"}, source="walmart")
        (ids,) = retriever.retrieve([query], k=5)
        assert ids == ["a1"]

    def test_all_tombstoned_returns_empty(self, name, tiny_corpus, query_record):
        retriever = make_retriever(name).fit(tiny_corpus)
        retriever.set_tombstones({"c1", "c2", "c3"})
        assert retriever.retrieve([query_record], k=5) == [[]]

    def test_tombstones_are_excluded_not_resurrected(self, name, cluster_world):
        corpus, queries = cluster_world
        retriever = make_retriever(name).fit(corpus)
        (before,) = retriever.retrieve(queries[:1], k=5)
        assert before
        retriever.set_tombstones(set(before))
        (after,) = retriever.retrieve(queries[:1], k=5)
        assert not (set(after) & set(before))

    def test_batch_order_independence(self, name, cluster_world):
        corpus, queries = cluster_world
        retriever = make_retriever(name).fit(corpus)
        batch = queries[:8]
        forward = retriever.retrieve(batch, k=5)
        backward = retriever.retrieve(list(reversed(batch)), k=5)
        assert forward == list(reversed(backward))
        solo = [retriever.retrieve([record], k=5)[0] for record in batch]
        assert forward == solo

    def test_state_round_trip_is_byte_identical(self, name, cluster_world):
        corpus, queries = cluster_world
        fitted = make_retriever(name).fit(corpus)
        restored = make_retriever(name)
        restored.load_state(fitted.state_arrays(), corpus)
        assert fitted.retrieve(queries, k=10) == restored.retrieve(queries, k=10)
        first = fitted.state_arrays()
        second = restored.state_arrays()
        assert sorted(first) == sorted(second)
        for key in first:
            assert np.array_equal(first[key], second[key]), key

    def test_vectors_only_state_rebuilds_deterministically(self, name, cluster_world):
        corpus, queries = cluster_world
        fitted = make_retriever(name).fit(corpus)
        rebuilt = make_retriever(name)
        rebuilt.load_state({"vectors": fitted.state_arrays()["vectors"]}, corpus)
        assert fitted.retrieve(queries, k=10) == rebuilt.retrieve(queries, k=10)

    def test_mmap_state_answers_byte_identically(self, name, cluster_world, tmp_path):
        corpus, queries = cluster_world
        fitted = make_retriever(name).fit(corpus)
        path = tmp_path / f"{name}-state.npz"
        write_artifact(path, dict(fitted.state_arrays()), metadata={})
        arrays, _ = read_artifact_lazy(path)
        restored = make_retriever(name)
        restored.load_state(arrays, corpus)
        assert fitted.retrieve(queries, k=10) == restored.retrieve(queries, k=10)

    def test_registry_round_trip(self, name):
        retriever = CANDIDATE_RETRIEVERS.create({"type": name, "n_features": 32, "seed": 9})
        spec = CANDIDATE_RETRIEVERS.spec(retriever)
        assert spec["type"] == name
        assert spec["params"]["n_features"] == 32
        rebuilt = CANDIDATE_RETRIEVERS.create(spec)
        assert rebuilt.n_features == 32
        assert rebuilt.seed == 9

    def test_apply_delta_insert_then_delete_round_trip(self, name, cluster_world):
        corpus, _ = cluster_world
        retriever = make_retriever(name).fit(corpus)
        new = Record(record_id="fresh-1", values={"title": "zorblatt quantum widget 9000"})
        extended = Dataset(
            records=list(corpus.records) + [new],
            name=corpus.name,
            attributes=corpus.attributes,
        )
        retriever.apply_delta(extended, ["fresh-1"])
        probe = Record(record_id="probe", values={"title": "zorblatt quantum widget 9001"})
        (ids,) = retriever.retrieve([probe], k=5)
        assert "fresh-1" in ids
        retriever.apply_delta(extended, [], tombstones=["fresh-1"])
        (ids,) = retriever.retrieve([probe], k=5)
        assert "fresh-1" not in ids

    def test_apply_delta_modified_record_uses_new_text(self, name, tiny_corpus):
        retriever = make_retriever(name).fit(tiny_corpus)
        modified = Dataset(
            records=[
                Record(record_id="c1", values={"title": "garmin forerunner gps watch"}),
                tiny_corpus["c2"],
                tiny_corpus["c3"],
            ],
            name=tiny_corpus.name,
            attributes=tiny_corpus.attributes,
        )
        retriever.apply_delta(modified, ["c1"])
        probe = Record(record_id="p", values={"title": "garmin forerunner gps watches"})
        (ids,) = retriever.retrieve([probe], k=1)
        assert ids == ["c1"]

    def test_apply_delta_refits_when_prefix_moves(self, name, tiny_corpus, query_record):
        retriever = make_retriever(name).fit(tiny_corpus)
        reordered = Dataset(
            records=[tiny_corpus["c3"], tiny_corpus["c1"], tiny_corpus["c2"]],
            name=tiny_corpus.name,
            attributes=tiny_corpus.attributes,
        )
        retriever.apply_delta(reordered, [])
        fresh = make_retriever(name).fit(reordered)
        assert retriever.retrieve([query_record], k=3) == fresh.retrieve(
            [query_record], k=3
        )


class TestLshSpecifics:
    def test_apply_delta_is_bit_identical_to_fresh_fit(self, cluster_world):
        corpus, queries = cluster_world
        retriever = make_retriever("lsh").fit(corpus)
        extra = [
            Record(record_id=f"x{i}", values={"title": f"brand new gadget {i}"})
            for i in range(5)
        ]
        extended = Dataset(
            records=list(corpus.records) + extra,
            name=corpus.name,
            attributes=corpus.attributes,
        )
        retriever.apply_delta(extended, [r.record_id for r in extra])
        fresh = make_retriever("lsh").fit(extended)
        assert retriever.retrieve(queries, k=10) == fresh.retrieve(queries, k=10)
        incremental = retriever.state_arrays()
        refit = fresh.state_arrays()
        for key in refit:
            assert np.array_equal(incremental[key], refit[key]), key

    def test_rejects_out_of_range_rows_per_band(self):
        with pytest.raises(ConfigurationError):
            LshRetriever(rows_per_band=0).fit(
                Dataset(
                    records=[Record(record_id="a", values={"title": "x"})],
                    name="d",
                    attributes=("title",),
                )
            )


class TestHnswSpecifics:
    def test_seeded_levels_are_insertion_order_independent(self):
        ids = [f"rec-{i}" for i in range(500)]
        forward = seeded_levels(ids, seed=3)
        shuffled_ids = list(reversed(ids))
        backward = seeded_levels(shuffled_ids, seed=3)
        assert np.array_equal(forward, backward[::-1])
        # Geometric decay: level 0 holds roughly half the records.
        assert (forward == 0).mean() > 0.3
        assert forward.max() >= 1

    def test_inserted_records_get_their_fresh_fit_levels(self, cluster_world):
        corpus, _ = cluster_world
        retriever = make_retriever("hnsw").fit(corpus)
        extra = [
            Record(record_id=f"y{i}", values={"title": f"novel item number {i}"})
            for i in range(4)
        ]
        extended = Dataset(
            records=list(corpus.records) + extra,
            name=corpus.name,
            attributes=corpus.attributes,
        )
        retriever.apply_delta(extended, [r.record_id for r in extra])
        fresh = make_retriever("hnsw").fit(extended)
        assert np.array_equal(
            retriever.state_arrays()["levels"], fresh.state_arrays()["levels"]
        )

    def test_wider_beam_never_lowers_recall_materially(self, cluster_world):
        corpus, queries = cluster_world
        oracle = AnnKnnRetriever(n_features=64).fit(corpus)
        narrow = HnswRetriever(n_features=64, ef_search=8).fit(corpus)
        wide = HnswRetriever(n_features=64, ef_search=128)
        wide.load_state({"vectors": narrow.state_arrays()["vectors"]}, corpus)
        narrow_q = evaluate_candidates(narrow, oracle, queries, ks=(10,))
        wide_q = evaluate_candidates(wide, oracle, queries, ks=(10,))
        assert wide_q.recall[10] >= narrow_q.recall[10] - 1e-9


@pytest.fixture(scope="module")
def model_config():
    from repro.config import FlexERConfig, GNNConfig, GraphConfig, MatcherConfig

    return FlexERConfig(
        matcher=MatcherConfig(hidden_dims=(24, 12), n_features=96, epochs=2, seed=5),
        graph=GraphConfig(k_neighbors=3),
        gnn=GNNConfig(hidden_dim=16, epochs=4, seed=5),
    )


@pytest.fixture(scope="module", params=RETRIEVER_NAMES)
def sublinear_model(request, model_config):
    """A ResolverModel fitted with the parametrized sub-linear retriever."""
    benchmark = load_benchmark("amazon_mi", num_pairs=80, products_per_domain=8, seed=7)
    labeler = BENCHMARK_LABELERS["amazon_mi"]
    products = benchmark.record_products

    def label_pair(left, right):
        return labeler.label_pair(products[left.record_id], products[right.record_id])

    records = list(benchmark.dataset.records)
    holdout = records[-4:]
    corpus = Dataset(
        records=records[:-4],
        name=benchmark.dataset.name,
        attributes=benchmark.dataset.attributes,
    )
    spec = {"type": request.param, "n_features": 64}
    if request.param == "lsh":
        spec.update(num_bands=48, rows_per_band=6)
    model = repro.fit(
        corpus,
        intents=labeler.intent_names,
        labeler=label_pair,
        config=model_config,
        retriever=spec,
    )
    return model, holdout


class TestModelIntegration:
    def test_fit_bundles_the_requested_retriever(self, sublinear_model):
        model, holdout = sublinear_model
        assert model.retriever_spec["type"] in RETRIEVER_NAMES
        candidates = model.retriever.retrieve(holdout, k=4)
        assert len(candidates) == len(holdout)

    def test_save_load_mmap_candidates_are_byte_identical(
        self, sublinear_model, tmp_path
    ):
        model, holdout = sublinear_model
        path = model.save(tmp_path / "model.npz")
        eager = repro.load_model(path)
        lazy = repro.load_model(path, mmap=True)
        expected = model.retriever.retrieve(holdout, k=5)
        assert eager.retriever.retrieve(holdout, k=5) == expected
        assert lazy.retriever.retrieve(holdout, k=5) == expected

    def test_update_then_force_compact_matches_refit_retriever(self, sublinear_model):
        model, holdout = sublinear_model
        model.update(upserts=[holdout[0]], compact="force")
        refit = CANDIDATE_RETRIEVERS.create(model.retriever_spec)
        refit.fit(model.corpus)
        refit.set_tombstones(model.tombstones)
        probes = holdout[1:]
        assert model.retriever.retrieve(probes, k=5) == refit.retrieve(probes, k=5)
