"""Tests of the sharded parallel execution layer (:mod:`repro.exec`)."""

from __future__ import annotations

import os

import numpy as np
import pytest

import repro
from repro.blocking.base import join_blocks
from repro.blocking.qgram import QGramBlocker
from repro.exceptions import ConfigurationError, ExecutionError
from repro.exec import (
    ProcessExecutor,
    SerialExecutor,
    ShardPlan,
    ThreadExecutor,
    encode_pairs_sharded,
    executor_spec,
    make_executor,
)
from repro.matching.features import PairFeatureConfig, PairFeatureEncoder
from repro.matching.solvers import InParallelSolver
from repro.pipeline import ArtifactCache
from repro.registry import EXECUTORS


def _square(value):
    return value * value


def _fail_on_three(value):
    if value == 3:
        raise ValueError("three is right out")
    return value


def _die_abruptly(value):
    # Kills the worker process without unwinding: the pool breaks and the
    # executor must surface a typed error instead of hanging.
    os._exit(13)


EXECUTOR_FACTORIES = [
    pytest.param(lambda: SerialExecutor(), id="serial"),
    pytest.param(lambda: ThreadExecutor(workers=2), id="threads"),
    pytest.param(lambda: ProcessExecutor(workers=2), id="processes"),
]


class TestShardPlan:
    def test_contiguous_balances_and_preserves_order(self):
        plan = ShardPlan.contiguous(10, 3)
        assert plan.num_shards == 3
        assert [shard.items for shard in plan.shards] == [
            (0, 1, 2, 3),
            (4, 5, 6),
            (7, 8, 9),
        ]

    def test_contiguous_empty_input_has_no_shards(self):
        plan = ShardPlan.contiguous(0, 4)
        assert plan.is_empty
        assert plan.num_shards == 0
        assert plan.take([]) == []

    def test_contiguous_more_workers_than_items(self):
        plan = ShardPlan.contiguous(2, 8)
        assert plan.num_shards == 2
        assert all(len(shard) == 1 for shard in plan.shards)

    def test_balanced_isolates_single_oversized_block(self):
        # One stop-gram-sized block dominates: it must occupy a shard of
        # its own while the small blocks balance across the rest.
        plan = ShardPlan.balanced([5000, 3, 2, 3, 2], 3)
        heavy = [shard for shard in plan.shards if 0 in shard.items]
        assert len(heavy) == 1
        assert heavy[0].items == (0,)
        light_weights = sorted(shard.weight for shard in plan.shards if shard is not heavy[0])
        assert light_weights == [5.0, 5.0]

    def test_balanced_empty_and_overprovisioned(self):
        assert ShardPlan.balanced([], 4).num_shards == 0
        plan = ShardPlan.balanced([1.0, 2.0], 16)
        assert plan.num_shards == 2

    def test_balanced_rejects_negative_weights(self):
        with pytest.raises(ExecutionError):
            ShardPlan.balanced([1.0, -1.0], 2)

    def test_take_and_restore_round_trip(self):
        plan = ShardPlan.balanced([3, 1, 4, 1, 5], 2)
        items = ["a", "b", "c", "d", "e"]
        shards = plan.take(items)
        restored = plan.restore(shards)
        assert restored == items

    def test_restore_rejects_mismatched_outputs(self):
        plan = ShardPlan.contiguous(4, 2)
        with pytest.raises(ExecutionError):
            plan.restore([[1, 2]])
        with pytest.raises(ExecutionError):
            plan.restore([[1], [2, 3, 4]])


class TestExecutors:
    @pytest.mark.parametrize("factory", EXECUTOR_FACTORIES)
    def test_map_preserves_payload_order(self, factory):
        executor = factory()
        assert executor.map(_square, [3, 1, 2, 5]) == [9, 1, 4, 25]
        assert executor.map(_square, []) == []

    @pytest.mark.parametrize("factory", EXECUTOR_FACTORIES)
    def test_task_failure_raises_typed_execution_error(self, factory):
        executor = factory()
        with pytest.raises(ExecutionError, match="three is right out"):
            executor.map(_fail_on_three, [1, 2, 3, 4])

    def test_process_worker_crash_surfaces_not_hangs(self):
        executor = ProcessExecutor(workers=2)
        with pytest.raises(ExecutionError):
            executor.map(_die_abruptly, [1, 2])

    def test_workers_validation(self):
        with pytest.raises(ConfigurationError):
            SerialExecutor(workers=-1)
        assert ThreadExecutor(workers=0).workers >= 1  # auto resolves to CPUs

    def test_process_executor_rejects_unknown_start_method(self):
        with pytest.raises(ConfigurationError):
            ProcessExecutor(workers=1, start_method="no-such-method")

    def test_executor_spec_normalization_and_worker_override(self):
        assert executor_spec() == {"type": "serial", "params": {}}
        spec = executor_spec("processes", workers=2)
        assert spec == {"type": "processes", "params": {"workers": 2}}
        assert executor_spec(ThreadExecutor(workers=3))["params"]["workers"] == 3

    def test_make_executor_and_registry_round_trip(self):
        executor = make_executor("threads", workers=2)
        assert isinstance(executor, ThreadExecutor)
        rebuilt = EXECUTORS.create(EXECUTORS.spec(executor))
        assert isinstance(rebuilt, ThreadExecutor)
        assert rebuilt.workers == 2
        assert not make_executor("serial").is_parallel


class TestShardedStages:
    @pytest.fixture(scope="class")
    def encode_inputs(self, tiny_benchmark):
        dataset = tiny_benchmark.dataset
        pairs = list(tiny_benchmark.candidates.pairs)
        return dataset, pairs

    @pytest.mark.parametrize(
        "factory", [EXECUTOR_FACTORIES[1], EXECUTOR_FACTORIES[2]]
    )
    def test_sharded_encoding_bit_identical(self, factory, encode_inputs):
        dataset, pairs = encode_inputs
        config = PairFeatureConfig(n_features=64)
        reference = PairFeatureEncoder(config).encode_batch(dataset, pairs)
        sharded = encode_pairs_sharded(config, dataset, pairs, factory())
        assert np.array_equal(reference, sharded)

    def test_encoder_executor_attribute_path(self, encode_inputs):
        dataset, pairs = encode_inputs
        config = PairFeatureConfig(n_features=64)
        serial = PairFeatureEncoder(config).encode(dataset, pairs)
        encoder = PairFeatureEncoder(config)
        encoder.executor = ThreadExecutor(workers=2)
        assert np.array_equal(serial, encoder.encode(dataset, pairs))

    @pytest.mark.parametrize(
        "factory", [EXECUTOR_FACTORIES[1], EXECUTOR_FACTORIES[2]]
    )
    def test_sharded_block_join_bit_identical(self, factory, tiny_benchmark):
        dataset = tiny_benchmark.dataset
        serial_blocker = QGramBlocker(q=4)
        serial_pairs = serial_blocker.block(dataset)
        sharded_blocker = QGramBlocker(q=4)
        sharded_blocker.executor = factory()
        sharded_pairs = sharded_blocker.block(dataset)
        assert serial_pairs == sharded_pairs
        assert serial_blocker.last_stats == sharded_blocker.last_stats

    def test_sharded_join_handles_min_shared_across_shards(self, toy_dataset):
        # Pairs co-occurring in blocks that land on *different* shards
        # must still accumulate their shared count in the reduce step.
        blocks = {
            "k1": ["r1", "r2"],
            "k2": ["r1", "r2", "r3"],
            "k3": ["r2", "r3"],
            "k4": ["r1", "r2", "r4"],
        }
        serial, serial_stats = join_blocks(toy_dataset, blocks, 2, False, None)
        sharded, sharded_stats = join_blocks(
            toy_dataset, blocks, 2, False, None, executor=ProcessExecutor(workers=2)
        )
        assert serial == sharded
        assert [pair.as_tuple() for pair in serial] == [("r1", "r2"), ("r2", "r3")]
        assert serial_stats == sharded_stats

    def test_parallel_matcher_fit_bit_identical(self, tiny_benchmark, fast_config):
        train = tiny_benchmark.split.train
        intents = tiny_benchmark.intents
        serial = InParallelSolver(intents, matcher_config=fast_config.matcher)
        serial.fit(train)
        parallel = InParallelSolver(intents, matcher_config=fast_config.matcher)
        parallel.executor = ProcessExecutor(workers=2)
        parallel.fit(train)
        serial_state = serial.state_dict()
        parallel_state = parallel.state_dict()
        assert set(serial_state) == set(parallel_state)
        for key, array in serial_state.items():
            assert np.array_equal(array, parallel_state[key]), key
        for intent in intents:
            # Training history ships back with the state dict, so the
            # fitted solvers are indistinguishable beyond parameters too.
            assert (
                serial.matchers[intent].history.losses
                == parallel.matchers[intent].history.losses
            ), intent


class TestEndToEndEquivalence:
    @pytest.fixture(scope="class")
    def serial_result(self, tiny_benchmark, fast_config):
        return repro.resolve(tiny_benchmark.split, config=fast_config)

    @pytest.mark.parametrize("executor", ["threads", "processes"])
    def test_resolve_bit_identical_across_executors(
        self, executor, tiny_benchmark, fast_config, serial_result
    ):
        result = repro.resolve(
            tiny_benchmark.split, config=fast_config, executor=executor, workers=2
        )
        assert result.solution.intents == serial_result.solution.intents
        for intent in result.solution.intents:
            assert np.array_equal(
                serial_result.solution.probabilities[intent],
                result.solution.probabilities[intent],
            ), intent
            assert np.array_equal(
                serial_result.solution.prediction(intent),
                result.solution.prediction(intent),
            ), intent

    def test_cached_artifacts_valid_across_executor_choices(
        self, tiny_benchmark, fast_config
    ):
        # The executor spec is excluded from stage fingerprints, so a
        # process-parallel re-run over a serial run's cache hits on
        # every stage (and vice versa).
        cache = ArtifactCache()
        cold = repro.resolve(tiny_benchmark.split, config=fast_config, cache=cache)
        warm = repro.resolve(
            tiny_benchmark.split,
            config=fast_config,
            cache=cache,
            executor="processes",
            workers=2,
        )
        assert set(warm.pipeline.stage_status().values()) == {"hit"}
        for intent in cold.solution.intents:
            assert np.array_equal(
                cold.solution.probabilities[intent], warm.solution.probabilities[intent]
            )

    def test_dump_result_byte_identical_across_executors(self, tmp_path):
        from repro.pipeline.cli import main

        common = [
            "resolve",
            "--dataset",
            "amazon_mi",
            "--num-pairs",
            "60",
            "--products",
            "6",
            "--matcher-epochs",
            "1",
            "--gnn-epochs",
            "1",
            "--target-intents",
            "equivalence",
        ]
        serial_path = tmp_path / "serial.npz"
        process_path = tmp_path / "processes.npz"
        assert main([*common, "--dump-result", str(serial_path)]) == 0
        assert (
            main(
                [
                    *common,
                    "--executor",
                    "processes",
                    "--workers",
                    "2",
                    "--dump-result",
                    str(process_path),
                ]
            )
            == 0
        )
        assert serial_path.read_bytes() == process_path.read_bytes()
