"""Vectorized-vs-scalar equivalence of every swept hot path.

The vectorization sweep kept the original loop implementations as
reference oracles (``encode_loop``, ``block_loop``, the builder's
per-edge passes, the scalar similarity functions).  These property-style
tests assert, on randomized inputs, that every batched kernel reproduces
its oracle exactly — bit-identical where the arithmetic is exact integer
sums, which covers all of them — and that the resolver produces identical
predictions under both implementations end to end.
"""

from __future__ import annotations

import random
import warnings

import numpy as np
import pytest

import repro
from repro import FlexERConfig, GNNConfig, GraphConfig, MatcherConfig
from repro.blocking import (
    BlockingStats,
    OversizedBlockWarning,
    QGramBlocker,
    TokenBlocker,
)
from repro.data.pairs import RecordPair
from repro.data.records import Dataset, Record
from repro.datasets import BENCHMARK_LABELERS
from repro.graph.builder import IntentGraphBuilder
from repro.matching.features import PairFeatureConfig, PairFeatureEncoder
from repro.perf.compat import use_reference_implementations, vectorization_enabled
from repro.pipeline import ArtifactCache
from repro.text.similarity import (
    _jaro_similarity_fast,
    jaro_similarity,
    jaro_winkler_similarity,
    jaro_winkler_similarity_fast,
    levenshtein_distance,
    levenshtein_distances_batch,
    levenshtein_similarities_batch,
    levenshtein_similarity,
)
from repro.text.vectorizers import HashingVectorizer, HashingVectorizerConfig

VOCABULARY = [
    "nike",
    "air",
    "max",
    "ultra",
    "pro",
    "2021",
    "red",
    "blue",
    "shoe",
    "größe",
    "men's",
    "xx",
    "a",
    "",
]


def random_text(rng: random.Random, max_words: int = 8) -> str:
    return " ".join(rng.choice(VOCABULARY) for _ in range(rng.randint(0, max_words)))


def random_dataset(rng: random.Random, size: int, with_sources: bool = False) -> Dataset:
    records = []
    for index in range(size):
        source = ("s" + str(index % 2)) if with_sources else None
        records.append(
            Record(
                f"r{index:03d}",
                {"title": random_text(rng), "brand": random_text(rng, 2) or None},
                source=source,
            )
        )
    return Dataset(records)


def random_pairs(rng: random.Random, dataset: Dataset, count: int) -> list[RecordPair]:
    ids = dataset.record_ids
    pairs: list[RecordPair] = []
    seen: set[RecordPair] = set()
    while len(pairs) < count:
        left, right = rng.sample(ids, 2)
        pair = RecordPair(left, right)
        if pair not in seen:
            seen.add(pair)
            pairs.append(pair)
    return pairs


class TestStringKernels:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_levenshtein_batch_matches_scalar(self, seed):
        rng = random.Random(seed)
        lefts = [random_text(rng) for _ in range(120)]
        rights = [random_text(rng) for _ in range(120)]
        lefts += ["", "abc", "", "same"]
        rights += ["abc", "", "", "same"]
        distances = levenshtein_distances_batch(lefts, rights)
        similarities = levenshtein_similarities_batch(lefts, rights)
        for index, (left, right) in enumerate(zip(lefts, rights)):
            assert distances[index] == levenshtein_distance(left, right)
            assert similarities[index] == levenshtein_similarity(left, right)

    @pytest.mark.parametrize("seed", [3, 4, 5])
    def test_fast_jaro_matches_reference(self, seed):
        rng = random.Random(seed)
        for _ in range(300):
            left = random_text(rng, 4)
            right = random_text(rng, 4)
            assert _jaro_similarity_fast(left, right) == jaro_similarity(left, right)
            assert jaro_winkler_similarity_fast(left, right) == jaro_winkler_similarity(
                left, right
            )

    def test_fast_jaro_edge_cases(self):
        cases = [("", ""), ("", "a"), ("a", ""), ("ab", "ba"), ("aaa", "aaa"), ("abcd", "dcba")]
        for left, right in cases:
            assert _jaro_similarity_fast(left, right) == jaro_similarity(left, right)

    def test_empty_batch(self):
        assert levenshtein_distances_batch([], []).shape == (0,)


class TestHashingVectorizer:
    @pytest.mark.parametrize(
        "config",
        [
            HashingVectorizerConfig(n_features=32),
            HashingVectorizerConfig(n_features=16, signed=False, normalize=False),
            HashingVectorizerConfig(n_features=8, char_ngram_sizes=(2,), use_word_tokens=False),
        ],
    )
    def test_transform_matches_transform_one(self, config):
        rng = random.Random(11)
        texts = [random_text(rng) for _ in range(40)] + ["", "x"]
        vectorizer = HashingVectorizer(config)
        expected = np.stack([vectorizer.transform_one(text) for text in texts])
        assert np.array_equal(vectorizer.transform(texts), expected)
        # Warm text cache must return the same rows.
        assert np.array_equal(vectorizer.transform(texts), expected)


class TestBatchedEncoder:
    @pytest.mark.parametrize("seed", [21, 22])
    def test_encode_batch_bit_identical_to_loop(self, seed):
        rng = random.Random(seed)
        dataset = random_dataset(rng, 30)
        pairs = random_pairs(rng, dataset, 80)
        encoder = PairFeatureEncoder(PairFeatureConfig(n_features=32))
        loop = encoder.encode_loop(dataset, pairs)
        batch = encoder.encode_batch(dataset, pairs)
        assert np.array_equal(loop, batch)
        # Warm caches (memo, similarity rows, text cache) stay identical.
        assert np.array_equal(encoder.encode_batch(dataset, pairs), loop)

    def test_encode_dispatches_on_flag(self):
        rng = random.Random(31)
        dataset = random_dataset(rng, 10)
        pairs = random_pairs(rng, dataset, 12)
        encoder = PairFeatureEncoder(PairFeatureConfig(n_features=16))
        vectorized = encoder.encode(dataset, pairs)
        with use_reference_implementations():
            reference = encoder.encode(dataset, pairs)
        assert np.array_equal(vectorized, reference)

    def test_encode_without_optional_blocks(self):
        rng = random.Random(41)
        dataset = random_dataset(rng, 12)
        pairs = random_pairs(rng, dataset, 20)
        config = PairFeatureConfig(
            n_features=16, use_interaction_features=False, use_similarity_features=False
        )
        encoder = PairFeatureEncoder(config)
        assert np.array_equal(
            encoder.encode_loop(dataset, pairs), encoder.encode_batch(dataset, pairs)
        )

    def test_result_cache_returns_same_matrix_object(self):
        rng = random.Random(51)
        dataset = random_dataset(rng, 8)
        pairs = random_pairs(rng, dataset, 10)
        encoder = PairFeatureEncoder(PairFeatureConfig(n_features=16))
        first = encoder.encode(dataset, pairs)
        second = encoder.encode(dataset, pairs)
        assert first is second


class TestBlockingJoins:
    @pytest.mark.parametrize("seed", [61, 62])
    @pytest.mark.parametrize("cross_source_only", [False, True])
    def test_qgram_join_matches_loop(self, seed, cross_source_only):
        rng = random.Random(seed)
        dataset = random_dataset(rng, 40, with_sources=True)
        blocker = QGramBlocker(
            q=3, min_shared=2, cross_source_only=cross_source_only, max_block_size=None
        )
        vectorized = blocker.block(dataset)
        vectorized_stats = blocker.last_stats
        loop = blocker.block_loop(dataset)
        assert vectorized == loop
        assert vectorized_stats == blocker.last_stats

    @pytest.mark.parametrize("seed", [71, 72])
    def test_token_join_matches_loop(self, seed):
        rng = random.Random(seed)
        dataset = random_dataset(rng, 40)
        blocker = TokenBlocker(min_shared=1, min_token_length=2, max_block_size=None)
        vectorized = blocker.block(dataset)
        vectorized_stats = blocker.last_stats
        loop = blocker.block_loop(dataset)
        assert vectorized == loop
        assert vectorized_stats == blocker.last_stats

    def test_oversized_blocks_warn_and_count(self):
        records = [Record(f"r{i}", {"title": "shared common text"}) for i in range(12)]
        dataset = Dataset(records)
        blocker = QGramBlocker(q=4, max_block_size=5)
        with pytest.warns(OversizedBlockWarning):
            pairs = blocker.block(dataset)
        assert pairs == []
        assert blocker.last_stats.num_oversized_blocks > 0
        assert blocker.last_stats.num_blocks >= blocker.last_stats.num_oversized_blocks

    def test_max_block_size_guard_equivalent_to_loop(self):
        records = [Record(f"r{i}", {"title": "shared common text"}) for i in range(12)] + [
            Record(f"u{i}", {"title": f"unique item number {i}"}) for i in range(8)
        ]
        dataset = Dataset(records)
        blocker = QGramBlocker(q=4, max_block_size=10)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", OversizedBlockWarning)
            vectorized = blocker.block(dataset)
        assert vectorized == blocker.block_loop(dataset)

    def test_stats_dataclass_defaults(self):
        stats = BlockingStats()
        assert stats.num_blocks == 0 and stats.num_candidate_pairs == 0


class TestGraphEdgeConstruction:
    @pytest.mark.parametrize("k_neighbors", [0, 2, 4])
    @pytest.mark.parametrize("include_inter_layer", [True, False])
    def test_vectorized_edges_match_loop(self, k_neighbors, include_inter_layer):
        rng = np.random.default_rng(5)
        representations = {
            intent: rng.normal(size=(15, 6)) for intent in ("equivalence", "brand", "model")
        }
        config = GraphConfig(
            k_neighbors=k_neighbors, include_inter_layer=include_inter_layer
        )
        builder = IntentGraphBuilder(config)
        vectorized = builder.build(representations)
        with use_reference_implementations():
            loop = builder.build(representations)
        assert vectorized.num_edges == loop.num_edges
        assert vectorized.intra_edge_count == loop.intra_edge_count
        assert vectorized.inter_edge_count == loop.inter_edge_count
        assert vectorized.in_neighbors == loop.in_neighbors
        for mode in ("mean", "sum"):
            for left, right in zip(vectorized.edge_arrays(mode), loop.edge_arrays(mode)):
                assert np.array_equal(left, right)
        assert np.array_equal(
            vectorized.aggregation_matrix("mean"), loop.aggregation_matrix("mean")
        )

    def test_layer_adjacency_covers_intra_edges(self):
        rng = np.random.default_rng(6)
        representations = {intent: rng.normal(size=(10, 4)) for intent in ("a", "b")}
        builder = IntentGraphBuilder(GraphConfig(k_neighbors=3))
        graph = builder.build(representations)
        block = graph.layer_adjacency("a", mode="sum")
        assert block.shape == (10, 10)
        # Intra-layer edges split evenly across the two layers.
        assert int(block.sum()) == graph.intra_edge_count // 2


class TestEndToEndEquivalence:
    @pytest.fixture(scope="class")
    def mier_benchmark(self):
        return repro.load_benchmark("amazon_mi", num_pairs=60, products_per_domain=8, seed=13)

    @pytest.fixture(scope="class")
    def config(self):
        return FlexERConfig(
            matcher=MatcherConfig(hidden_dims=(8,), n_features=32, epochs=2, seed=3),
            graph=GraphConfig(k_neighbors=2),
            gnn=GNNConfig(hidden_dim=8, epochs=2, seed=3),
            blocker={"type": "token", "min_shared": 1},
        )

    @staticmethod
    def _resolve(mier_benchmark, config, cache):
        labeler = BENCHMARK_LABELERS["amazon_mi"]
        products = mier_benchmark.record_products

        def label(left, right):
            return labeler.label_pair(products[left.record_id], products[right.record_id])

        return repro.resolve(
            mier_benchmark.dataset,
            intents=mier_benchmark.intents,
            labeler=label,
            config=config,
            target_intents=("equivalence",),
            cache=cache,
        )

    def test_vectorized_and_reference_resolutions_match(self, mier_benchmark, config):
        vectorized = self._resolve(mier_benchmark, config, ArtifactCache())
        with use_reference_implementations():
            reference = self._resolve(mier_benchmark, config, ArtifactCache())
        for intent in vectorized.solution.intents:
            assert np.array_equal(
                vectorized.solution.prediction(intent),
                reference.solution.prediction(intent),
            )
            np.testing.assert_allclose(
                vectorized.solution.probabilities[intent],
                reference.solution.probabilities[intent],
                atol=1e-9,
            )

    def test_warm_cache_byte_identity(self, mier_benchmark, config):
        cache = ArtifactCache()
        cold = self._resolve(mier_benchmark, config, cache)
        warm = self._resolve(mier_benchmark, config, cache)
        for intent in cold.solution.intents:
            assert np.array_equal(
                cold.solution.prediction(intent), warm.solution.prediction(intent)
            )
            assert np.array_equal(
                cold.solution.probabilities[intent], warm.solution.probabilities[intent]
            )

    def test_flags_restore_after_context(self):
        before = vectorization_enabled()
        assert all(before.values())
        with use_reference_implementations():
            assert not any(vectorization_enabled().values())
        assert vectorization_enabled() == before
