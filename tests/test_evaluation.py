"""Tests for the evaluation measures (Eqs. 6-10) and report formatting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.mier import MIERSolution
from repro.core.resolution import Resolution
from repro.evaluation import (
    comparison_summary,
    evaluate_binary,
    evaluate_resolution,
    evaluate_solution,
    format_metric_rows,
    format_table,
    multi_intent_error_reduction,
    preventable_error,
    residual_error_reduction,
)
from repro.exceptions import EvaluationError

binary_arrays = st.lists(st.integers(0, 1), min_size=1, max_size=30)


class TestBinaryEvaluation:
    def test_perfect_predictions(self):
        labels = np.array([1, 0, 1, 0])
        result = evaluate_binary(labels, labels)
        assert result.precision == result.recall == result.f1 == result.accuracy == 1.0

    def test_known_confusion_counts(self):
        predictions = np.array([1, 1, 0, 0])
        labels = np.array([1, 0, 1, 0])
        result = evaluate_binary(predictions, labels)
        assert (result.true_positive, result.false_positive) == (1, 1)
        assert (result.true_negative, result.false_negative) == (1, 1)
        assert result.precision == 0.5 and result.recall == 0.5

    def test_degenerate_cases(self):
        assert evaluate_binary(np.zeros(4, int), np.zeros(4, int)).f1 == 0.0
        assert evaluate_binary(np.zeros(4, int), np.ones(4, int)).recall == 0.0
        assert evaluate_binary(np.ones(4, int), np.zeros(4, int)).precision == 0.0

    def test_validation(self):
        with pytest.raises(EvaluationError):
            evaluate_binary(np.array([2]), np.array([1]))
        with pytest.raises(EvaluationError):
            evaluate_binary(np.array([1, 0]), np.array([1]))

    @given(binary_arrays)
    @settings(max_examples=50)
    def test_bounds_property(self, values):
        labels = np.array(values)
        rng = np.random.default_rng(0)
        predictions = rng.integers(0, 2, size=len(values))
        result = evaluate_binary(predictions, labels)
        for value in result.as_dict().values():
            assert 0.0 <= value <= 1.0

    def test_resolution_evaluation_matches_array_evaluation(self, toy_candidates):
        predictions = np.array([1, 1, 0, 0, 0, 0, 0, 1, 0, 0])
        labels = toy_candidates.labels("brand")
        array_eval = evaluate_binary(predictions, labels)
        resolution = Resolution.from_predictions(toy_candidates, predictions, "brand")
        golden = Resolution.from_labels(toy_candidates, "brand")
        set_eval = evaluate_resolution(resolution, golden)
        assert set_eval.precision == pytest.approx(array_eval.precision)
        assert set_eval.recall == pytest.approx(array_eval.recall)
        assert set_eval.f1 == pytest.approx(array_eval.f1)


class TestResidualErrorReduction:
    def test_paper_semantics(self):
        # Baseline F = 0.9, candidate F = 0.95 -> removed half of the residual error.
        assert residual_error_reduction(0.95, 0.9) == pytest.approx(50.0)

    def test_perfect_baseline_gives_zero(self):
        assert residual_error_reduction(1.0, 1.0) == 0.0

    def test_degradation_is_negative(self):
        assert residual_error_reduction(0.8, 0.9) < 0

    def test_bounds_validation(self):
        with pytest.raises(EvaluationError):
            residual_error_reduction(1.5, 0.5)


class TestMultiIntentEvaluation:
    def _solution(self, toy_candidates, flip_brand=False):
        predictions = {
            "equivalence": toy_candidates.labels("equivalence"),
            "brand": toy_candidates.labels("brand"),
        }
        if flip_brand:
            predictions["brand"] = 1 - predictions["brand"]
        return MIERSolution(toy_candidates, predictions)

    def test_perfect_solution(self, toy_candidates):
        evaluation = evaluate_solution(self._solution(toy_candidates))
        assert evaluation.mi_f1 == 1.0
        assert evaluation.mi_accuracy == 1.0

    def test_mi_accuracy_requires_all_intents_correct(self, toy_candidates):
        evaluation = evaluate_solution(self._solution(toy_candidates, flip_brand=True))
        assert evaluation.mi_accuracy == 0.0
        assert evaluation.mi_f1 < 1.0

    def test_mi_values_average_per_intent(self, toy_candidates):
        evaluation = evaluate_solution(self._solution(toy_candidates, flip_brand=True))
        per_intent_f1 = [e.f1 for e in evaluation.per_intent.values()]
        assert evaluation.mi_f1 == pytest.approx(np.mean(per_intent_f1))

    def test_error_reduction_between_solutions(self, toy_candidates):
        better = evaluate_solution(self._solution(toy_candidates))
        worse = evaluate_solution(self._solution(toy_candidates, flip_brand=True))
        assert multi_intent_error_reduction(better, worse, "MI-F") > 0
        with pytest.raises(EvaluationError):
            multi_intent_error_reduction(better, worse, "unknown")


class TestPreventableError:
    def test_requires_subsuming_intents(self):
        with pytest.raises(EvaluationError):
            preventable_error({"a": np.array([1])}, {"a": np.array([0])}, "a", ())

    def test_zero_when_no_false_positives(self):
        predictions = {"narrow": np.array([0, 0, 1]), "broad": np.array([0, 1, 1])}
        labels = {"narrow": np.array([0, 0, 1]), "broad": np.array([0, 1, 1])}
        assert preventable_error(predictions, labels, "narrow", ("broad",)) == 0.0

    def test_counts_preventable_false_positives(self):
        # Pair 0: narrow FP while broad correctly predicts negative -> preventable.
        # Pair 1: narrow FP but broad also (wrongly) predicts positive -> not preventable.
        predictions = {"narrow": np.array([1, 1, 0, 0]), "broad": np.array([0, 1, 0, 1])}
        labels = {"narrow": np.array([0, 0, 0, 0]), "broad": np.array([0, 0, 0, 1])}
        value = preventable_error(predictions, labels, "narrow", ("broad",))
        # True negatives of the OR of subsuming intents: pairs 0 and 2 -> denominator 2.
        assert value == pytest.approx(0.5)

    def test_missing_intent_raises(self):
        with pytest.raises(EvaluationError):
            preventable_error({"a": np.array([1])}, {"a": np.array([1])}, "a", ("b",))


class TestReports:
    def test_format_table_contains_values(self):
        table = format_table(["Model", "F1"], [["FlexER", 0.9641]], title="Table 5")
        assert "Table 5" in table
        assert "FlexER" in table
        assert "0.964" in table

    def test_format_metric_rows(self):
        headers, rows = format_metric_rows({"FlexER": {"MI-F": 0.9}}, ["MI-F"])
        assert headers == ["Model", "MI-F"]
        assert rows[0][0] == "FlexER"

    def test_comparison_summary(self):
        summary = comparison_summary({"a": {"f1": 0.5}, "b": {"f1": 0.7}}, "f1")
        assert "b" in summary
        assert comparison_summary({}, "f1").startswith("no results")


class TestBlockingQuality:
    @pytest.fixture
    def blocked_dataset(self):
        from repro.data.records import Dataset, Record

        records = [
            Record(record_id=f"r{i}", values={"title": f"item {i}"}, source=source)
            for i, source in enumerate(["a", "a", "b", "b", None])
        ]
        return Dataset(records=records, name="blocking-eval")

    def test_reduction_ratio_and_admissible_pairs(self, blocked_dataset):
        from repro.data.pairs import RecordPair
        from repro.evaluation import evaluate_blocking

        pairs = [RecordPair("r0", "r2"), RecordPair("r1", "r3")]
        quality = evaluate_blocking(blocked_dataset, pairs)
        assert quality.num_admissible_pairs == 10  # C(5, 2)
        assert quality.reduction_ratio == pytest.approx(1.0 - 2 / 10)
        assert quality.pair_completeness is None
        assert quality.pair_quality is None

    def test_cross_source_only_excludes_same_source_pairs(self, blocked_dataset):
        from repro.evaluation import admissible_pair_count

        # 10 total minus one a-a pair and one b-b pair; the source-less
        # record stays pairable with everything.
        assert admissible_pair_count(blocked_dataset, cross_source_only=True) == 8

    def test_pair_completeness_and_quality_per_intent(self, blocked_dataset):
        from repro.data.pairs import RecordPair
        from repro.evaluation import evaluate_blocking

        pairs = [RecordPair("r0", "r2"), RecordPair("r1", "r3")]
        golden = {
            "equivalence": {RecordPair("r0", "r2"), RecordPair("r0", "r4")},
            "brand": set(),
        }
        quality = evaluate_blocking(blocked_dataset, pairs, golden_positive=golden)
        assert quality.pair_completeness == {"equivalence": 0.5, "brand": 1.0}
        assert quality.pair_quality == {"equivalence": 0.5, "brand": 0.0}
        as_dict = quality.as_dict()
        assert as_dict["pair_completeness"]["equivalence"] == 0.5

    def test_duplicate_candidate_pairs_rejected(self, blocked_dataset):
        from repro.data.pairs import RecordPair
        from repro.evaluation import evaluate_blocking

        pair = RecordPair("r0", "r2")
        with pytest.raises(EvaluationError):
            evaluate_blocking(blocked_dataset, [pair, pair])
