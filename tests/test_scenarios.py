"""Tests for the workload scenarios (``repro.scenarios``).

The contracts under test: field-level corruption and time-mode
streaming are seed-deterministic; scenario reports separate
byte-reproducible content from wall-clock timings (two runs of the same
``(spec, seed)`` serialize to identical timings-free JSON, including
under the process executor); the streaming scenario asserts exact-mode
parity with a fresh union fit; the robustness grid emits one
quality×latency cell per (corruption level × component spec); and the
perf harness gates the headline scenarios on wall time and macro F1.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data.records import Dataset, Record
from repro.datasets import (
    DEFAULT_FIELD_ALIASES,
    CorpusChunk,
    FieldCorruptionConfig,
    RecordPerturber,
    stream_chunks,
    typo_edit,
)
from repro.exceptions import DataError, ScenarioError
from repro.perf.bench import check_regression
from repro.registry import SCENARIOS
from repro.scenarios import (
    NAMED_SCENARIOS,
    IntentDriftScenario,
    RobustnessGridScenario,
    ScenarioReport,
    StreamingScenario,
    build_scenario,
    load_scenario_report,
    named_scenario,
    scenario_names,
    timestamped_chunks,
)


def _records(count: int, fields: int = 3) -> list[Record]:
    names = ("title", "brand", "category", "model")[:fields]
    return [
        Record(
            record_id=f"r{index}",
            values={name: f"{name}-{index}" for name in names},
        )
        for index in range(count)
    ]


# ---------------------------------------------------------------------------
# field-level corruption (datasets.perturb)


class TestTypoEdit:
    def test_deterministic_pure_function(self):
        assert typo_edit("keyboard", 0, 0.5) == typo_edit("keyboard", 0, 0.5)

    def test_short_tokens_pass_through(self):
        assert typo_edit("ab", 0, 0.5) == "ab"

    def test_kinds_change_token(self):
        for kind in (0, 1, 2):  # delete / transpose / duplicate
            assert typo_edit("keyboard", kind, 0.4) != "keyboard"

    def test_kind_semantics(self):
        assert len(typo_edit("keyboard", 0, 0.0)) == len("keyboard") - 1
        assert sorted(typo_edit("keyboard", 1, 0.0)) == sorted("keyboard")
        assert len(typo_edit("keyboard", 2, 0.0)) == len("keyboard") + 1


class TestRecordPerturber:
    def test_same_seed_same_output(self):
        records = _records(40)
        config = FieldCorruptionConfig(
            p_drop_field=0.3, p_swap_fields=0.3, p_rename_field=0.3, p_value_typo=0.5
        )
        first = RecordPerturber(config, np.random.default_rng(7)).corrupt_all(records)
        second = RecordPerturber(config, np.random.default_rng(7)).corrupt_all(records)
        assert [record.values for record in first] == [
            record.values for record in second
        ]

    def test_different_seed_differs(self):
        records = _records(40)
        config = FieldCorruptionConfig(p_drop_field=0.5, p_value_typo=0.5)
        first = RecordPerturber(config, np.random.default_rng(1)).corrupt_all(records)
        second = RecordPerturber(config, np.random.default_rng(2)).corrupt_all(records)
        assert [record.values for record in first] != [
            record.values for record in second
        ]

    def test_zero_probabilities_are_identity(self):
        records = _records(10)
        corrupted = RecordPerturber(FieldCorruptionConfig()).corrupt_all(records)
        assert [record.values for record in corrupted] == [
            record.values for record in records
        ]

    def test_rename_moves_value_under_alias(self):
        records = _records(30)
        config = FieldCorruptionConfig(p_rename_field=1.0)
        corrupted = RecordPerturber(config, np.random.default_rng(0)).corrupt_all(
            records
        )
        renamed = [
            record
            for record in corrupted
            if set(record.values) - {"title", "brand", "category"}
        ]
        assert renamed, "forced renames must introduce alias keys"
        aliases = set(DEFAULT_FIELD_ALIASES.values())
        for record in renamed:
            assert set(record.values) - {"title", "brand", "category"} <= aliases

    def test_drop_nulls_a_field(self):
        records = _records(20)
        config = FieldCorruptionConfig(p_drop_field=1.0)
        corrupted = RecordPerturber(config, np.random.default_rng(0)).corrupt_all(
            records
        )
        assert all(
            any(value is None for value in record.values.values())
            for record in corrupted
        )

    def test_corrupt_dataset_reinfers_schema(self):
        dataset = Dataset(
            records=_records(25), name="toy", attributes=("title", "brand", "category")
        )
        config = FieldCorruptionConfig(p_rename_field=1.0)
        corrupted = RecordPerturber(config, np.random.default_rng(3)).corrupt_dataset(
            dataset, name="toy-corrupted"
        )
        assert corrupted.name == "toy-corrupted"
        assert set(corrupted.attributes) - set(dataset.attributes or ())
        assert [record.record_id for record in corrupted.records] == [
            record.record_id for record in dataset.records
        ]

    def test_scaled_caps_probabilities(self):
        config = FieldCorruptionConfig(p_drop_field=0.5, p_value_typo=0.9)
        heavy = config.scaled(4.0)
        assert heavy.p_drop_field == 1.0
        assert heavy.p_value_typo == 1.0
        clean = config.scaled(0.0)
        assert clean.p_drop_field == 0.0


# ---------------------------------------------------------------------------
# time-mode streaming (datasets.stream)


class TestStreamByTime:
    def _stamped(self, timestamps):
        return [
            Record(record_id=f"r{index}", values={"title": f"t{index}", "ts": str(ts)})
            for index, ts in enumerate(timestamps)
        ]

    def test_windows_anchor_at_min_timestamp(self):
        chunks = list(
            stream_chunks(
                self._stamped([10.0, 11.0, 13.5, 14.0, 20.0]),
                timestamp_attribute="ts",
                window=2.0,
            )
        )
        assert [chunk.timestamp for chunk in chunks] == [10.0, 12.0, 14.0, 20.0]
        assert [len(chunk.records) for chunk in chunks] == [2, 1, 1, 1]

    def test_empty_windows_skipped_and_indexes_contiguous(self):
        chunks = list(
            stream_chunks(
                self._stamped([0.0, 100.0]), timestamp_attribute="ts", window=1.0
            )
        )
        assert [chunk.index for chunk in chunks] == [0, 1]

    def test_stable_within_window(self):
        chunks = list(
            stream_chunks(
                self._stamped([5.0, 5.0, 5.0]), timestamp_attribute="ts", window=10.0
            )
        )
        assert [record.record_id for record in chunks[0].records] == ["r0", "r1", "r2"]

    def test_missing_timestamp_raises(self):
        records = [Record(record_id="a", values={"title": "x"})]
        with pytest.raises(DataError):
            list(stream_chunks(records, timestamp_attribute="ts", window=1.0))

    def test_mode_exclusivity(self):
        records = self._stamped([1.0])
        with pytest.raises(DataError):
            list(stream_chunks(records, 2, timestamp_attribute="ts", window=1.0))
        with pytest.raises(DataError):
            list(stream_chunks(records))
        with pytest.raises(DataError):
            list(stream_chunks(records, timestamp_attribute="ts"))

    def test_timestamped_chunks_return_original_records(self):
        records = _records(7)
        chunks = timestamped_chunks(records, chunk_size=3)
        assert [len(chunk.records) for chunk in chunks] == [3, 3, 1]
        flattened = [record for chunk in chunks for record in chunk.records]
        assert flattened == records  # identity, not stamped copies
        assert all("arrival" not in record.values for record in flattened)
        assert [chunk.timestamp for chunk in chunks] == [0.0, 3.0, 6.0]


# ---------------------------------------------------------------------------
# report schema and determinism plumbing


class TestScenarioReport:
    def _report(self) -> ScenarioReport:
        return ScenarioReport(
            name="toy",
            scenario={"type": "streaming", "params": {"chunk_size": 2}},
            seed=0,
            matrix=[
                {"cell": "a", "macro_f1": 0.5, "f1": {"equivalence": 0.5}},
                {"cell": "b", "macro_f1": 0.75, "f1": {"equivalence": 0.75}},
            ],
            summary={"final_macro_f1": 0.75},
            timings={"cells": {"a": {"wall_seconds": 0.1}}, "total_seconds": 0.2},
        )

    def test_duplicate_cells_rejected(self):
        with pytest.raises(ScenarioError):
            ScenarioReport(
                name="x", scenario={}, seed=0, matrix=[{"cell": "a"}, {"cell": "a"}]
            )

    def test_missing_cell_rejected(self):
        with pytest.raises(ScenarioError):
            ScenarioReport(name="x", scenario={}, seed=0, matrix=[{"macro_f1": 1.0}])

    def test_timings_excluded_from_deterministic_document(self):
        report = self._report()
        document = json.loads(report.to_json(include_timings=False))
        assert "timings" not in document
        assert json.loads(report.to_json())["timings"]["total_seconds"] == 0.2

    def test_roundtrip_through_file(self, tmp_path):
        report = self._report()
        path = report.write(tmp_path / "report.json")
        document = load_scenario_report(path)
        assert document["name"] == "toy"
        assert document["matrix"][1]["macro_f1"] == 0.75

    def test_load_rejects_wrong_kind(self, tmp_path):
        path = tmp_path / "not_a_report.json"
        path.write_text(json.dumps({"kind": "other"}), encoding="utf-8")
        with pytest.raises(ScenarioError):
            load_scenario_report(path)

    def test_matrix_table_joins_quality_and_latency(self):
        table = self._report().matrix_table()
        assert "f1::equivalence" in table
        assert "wall_seconds" in table
        lines = table.splitlines()
        assert any(line.startswith("a") for line in lines)


# ---------------------------------------------------------------------------
# registry family and presets


class TestScenarioRegistry:
    def test_family_registered(self):
        keys = set(SCENARIOS.keys())
        assert {"streaming", "intent_drift", "robustness_grid"} <= keys

    def test_spec_roundtrip(self):
        scenario = build_scenario(
            {"type": "streaming", "params": {"chunk_size": 3, "stream_records": 9}}
        )
        assert isinstance(scenario, StreamingScenario)
        spec = scenario.to_spec()
        assert spec["params"]["chunk_size"] == 3
        rebuilt = build_scenario(spec)
        assert rebuilt.to_spec() == spec

    def test_presets_build(self):
        for name in scenario_names():
            scenario = named_scenario(name)
            assert scenario.to_spec()["type"] == NAMED_SCENARIOS[name]["spec"]["type"]

    def test_unknown_preset_raises(self):
        with pytest.raises(ScenarioError):
            named_scenario("no-such-scenario")

    def test_invalid_params_raise(self):
        with pytest.raises(ScenarioError):
            StreamingScenario(compact="sometimes")
        with pytest.raises(ScenarioError):
            RobustnessGridScenario(levels=[])
        with pytest.raises(ScenarioError):
            RobustnessGridScenario(solver_specs=[], blocker_specs=[], retriever_specs=[])
        with pytest.raises(ScenarioError):
            RobustnessGridScenario(
                levels=[{"name": "a", "scale": 0.0}, {"name": "a", "scale": 1.0}]
            )

    def test_drift_is_a_streaming_scenario(self):
        assert issubclass(IntentDriftScenario, StreamingScenario)


# ---------------------------------------------------------------------------
# end-to-end scenario runs (tiny scales)


TINY_STREAMING = {
    "type": "streaming",
    "params": {
        "num_pairs": 60,
        "products": 6,
        "matcher_epochs": 1,
        "gnn_epochs": 1,
        "probe_count": 4,
        "stream_records": 6,
        "chunk_size": 3,
        "query_k": 3,
    },
}

TINY_GRID = {
    "type": "robustness_grid",
    "params": {
        "num_pairs": 60,
        "products": 6,
        "matcher_epochs": 1,
        "gnn_epochs": 1,
        "levels": [
            {"name": "clean", "scale": 0.0},
            {"name": "heavy", "scale": 2.0},
        ],
        "solver_specs": ["in_parallel", "naive"],
    },
}


class TestStreamingScenarioRun:
    def test_report_content_is_deterministic_and_parity_holds(self):
        first = build_scenario(TINY_STREAMING).run(seed=0, name="tiny")
        second = build_scenario(TINY_STREAMING).run(seed=0, name="tiny")
        assert first.summary["final_exact_parity"] is True
        assert first.to_json(include_timings=False) == second.to_json(
            include_timings=False
        )
        # Timings exist but never leak into the deterministic document.
        assert "cells" in first.timings
        cells = [row["cell"] for row in first.matrix]
        assert cells[0] == "initial"
        assert len(cells) == 1 + 2  # initial + ceil(6 / 3) chunks
        for row in first.matrix[1:]:
            assert set(row) >= {
                "records",
                "new_pairs",
                "compacted",
                "macro_f1",
                "staleness",
            }

    def test_staleness_chains_quality_deltas(self):
        report = build_scenario(TINY_STREAMING).run(seed=0)
        rows = report.matrix
        for previous, current in zip(rows, rows[1:]):
            assert current["staleness"] == pytest.approx(
                current["macro_f1"] - previous["macro_f1"], abs=1e-6
            )


class TestRobustnessGridRun:
    def test_grid_shape_and_determinism(self):
        first = build_scenario(TINY_GRID).run(seed=0, name="tiny-grid")
        second = build_scenario(TINY_GRID).run(seed=0, name="tiny-grid")
        assert first.to_json(include_timings=False) == second.to_json(
            include_timings=False
        )
        assert len(first.matrix) == 2 * 2  # levels x solvers
        assert {row["level"] for row in first.matrix} == {"clean", "heavy"}
        assert first.summary["num_cells"] == 4
        assert set(first.summary["per_level_macro_f1"]) == {"clean", "heavy"}
        for row in first.matrix:
            assert first.cell_timings(row["cell"]).get("wall_seconds", 0) > 0


# ---------------------------------------------------------------------------
# perf regression gate on the scenarios section


def _perf_report(wall: float, macro: float) -> dict:
    return {
        "schema_version": 1,
        "kind": "repro-perf",
        "workloads": [
            {
                "workload": {"name": "w"},
                "vectorized": {"end_to_end_wall_seconds": 1.0},
            }
        ],
        "scenarios": {
            "seed": 0,
            "scenarios": {
                "streaming-smoke": {
                    "report": {},
                    "headline_macro_f1": macro,
                    "wall_seconds": wall,
                }
            },
        },
    }


class TestScenarioRegressionGate:
    def test_clean_pass(self):
        problems = check_regression(_perf_report(10.0, 0.5), _perf_report(10.0, 0.5))
        assert problems == []

    def test_wall_regression_flagged(self):
        problems = check_regression(_perf_report(20.0, 0.5), _perf_report(10.0, 0.5))
        assert any("wall time regressed" in problem for problem in problems)

    def test_macro_f1_regression_flagged(self):
        problems = check_regression(_perf_report(10.0, 0.2), _perf_report(10.0, 0.5))
        assert any("macro F1 regressed" in problem for problem in problems)

    def test_missing_section_ignored(self):
        current = _perf_report(10.0, 0.5)
        del current["scenarios"]
        assert check_regression(current, _perf_report(10.0, 0.5)) == []


# ---------------------------------------------------------------------------
# chunk container sanity


def test_corpus_chunk_is_reused_by_time_mode():
    chunks = list(stream_chunks(_records(4), 2))
    assert all(isinstance(chunk, CorpusChunk) for chunk in chunks)
    assert [chunk.timestamp for chunk in chunks] == [0.0, 1.0]
