"""Tests for train/validation/test splitting."""

from __future__ import annotations

import pytest

from repro.data.splits import SplitRatio, split_candidates
from repro.exceptions import ConfigurationError


class TestSplitRatio:
    def test_default_is_paper_ratio(self):
        fractions = SplitRatio().fractions()
        assert fractions == pytest.approx((0.6, 0.2, 0.2))

    def test_negative_ratio_rejected(self):
        with pytest.raises(ConfigurationError):
            SplitRatio(train=-1.0)

    def test_all_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            SplitRatio(train=0, valid=0, test=0)


class TestSplitCandidates:
    def test_partition_is_complete_and_disjoint(self, tiny_benchmark):
        candidates = tiny_benchmark.candidates
        split = split_candidates(candidates, seed=1)
        total = len(split.train) + len(split.valid) + len(split.test)
        assert total == len(candidates)
        all_pairs = [p for part in split for p in part.pairs]
        assert len(set(all_pairs)) == len(all_pairs)

    def test_sizes_follow_ratio(self, tiny_benchmark):
        candidates = tiny_benchmark.candidates
        split = split_candidates(candidates, SplitRatio(1, 1, 1), seed=2)
        sizes = split.sizes()
        assert abs(sizes["train"] - sizes["test"]) <= 3
        assert abs(sizes["train"] - sizes["valid"]) <= 3

    def test_stratification_keeps_positive_rates_close(self, tiny_benchmark):
        candidates = tiny_benchmark.candidates
        intent = candidates.intents[0]
        split = split_candidates(candidates, stratify_intent=intent, seed=3)
        overall = candidates.positive_rate(intent)
        for part in split:
            if len(part) >= 10:
                assert abs(part.positive_rate(intent) - overall) < 0.2

    def test_deterministic_given_seed(self, tiny_benchmark):
        candidates = tiny_benchmark.candidates
        first = split_candidates(candidates, seed=11)
        second = split_candidates(candidates, seed=11)
        assert [p.as_tuple() for p in first.test.pairs] == [
            p.as_tuple() for p in second.test.pairs
        ]

    def test_different_seeds_differ(self, tiny_benchmark):
        candidates = tiny_benchmark.candidates
        first = split_candidates(candidates, seed=11)
        second = split_candidates(candidates, seed=12)
        assert [p.as_tuple() for p in first.test.pairs] != [
            p.as_tuple() for p in second.test.pairs
        ]

    def test_positive_rates_report_structure(self, tiny_benchmark):
        split = tiny_benchmark.split
        report = split.positive_rates()
        assert set(report) == {"train", "valid", "test"}
        for rates in report.values():
            assert set(rates) == set(tiny_benchmark.intents)
            assert all(0.0 <= value <= 1.0 for value in rates.values())


class TestDatasetSplit:
    def test_iteration_order(self, tiny_benchmark):
        parts = list(tiny_benchmark.split)
        assert parts[0] is tiny_benchmark.split.train
        assert parts[2] is tiny_benchmark.split.test

    def test_sizes_keys(self, tiny_benchmark):
        assert set(tiny_benchmark.split.sizes()) == {"train", "valid", "test"}
