"""Tests for the record and dataset model."""

from __future__ import annotations

import pytest

from repro.data.records import Dataset, Record
from repro.exceptions import DataError, SchemaError, UnknownRecordError


class TestRecord:
    def test_requires_non_empty_id(self):
        with pytest.raises(DataError):
            Record(record_id="", values={"title": "x"})

    def test_get_returns_default_for_null_and_missing(self):
        record = Record(record_id="r1", values={"title": None})
        assert record.get("title", "fallback") == "fallback"
        assert record.get("brand", "none") == "none"

    def test_text_concatenates_non_null_values_in_order(self):
        record = Record(record_id="r1", values={"title": "Nike Air", "brand": None, "cat": "Shoes"})
        assert record.text() == "Nike Air Shoes"
        assert record.text(["cat", "title"]) == "Shoes Nike Air"

    def test_attributes_preserve_insertion_order(self):
        record = Record(record_id="r1", values={"b": "1", "a": "2"})
        assert record.attributes == ("b", "a")


class TestDataset:
    def test_duplicate_ids_rejected(self):
        records = [Record("r1", {"title": "a"}), Record("r1", {"title": "b"})]
        with pytest.raises(DataError):
            Dataset(records=records)

    def test_schema_inferred_from_records(self):
        dataset = Dataset(records=[Record("r1", {"title": "a", "brand": "b"})])
        assert dataset.attributes == ("title", "brand")

    def test_explicit_schema_enforced(self):
        with pytest.raises(SchemaError):
            Dataset(records=[Record("r1", {"color": "red"})], attributes=("title",))

    def test_lookup_and_membership(self, toy_dataset):
        assert "r1" in toy_dataset
        assert toy_dataset["r1"].record_id == "r1"
        with pytest.raises(UnknownRecordError):
            toy_dataset["missing"]

    def test_add_enforces_uniqueness_and_schema(self, toy_dataset):
        with pytest.raises(DataError):
            toy_dataset.add(Record("r1", {"title": "dup"}))
        with pytest.raises(SchemaError):
            toy_dataset.add(Record("r99", {"color": "red"}))
        toy_dataset.add(Record("r7", {"title": "new product"}))
        assert "r7" in toy_dataset

    def test_by_source_and_sources(self):
        records = [
            Record("a1", {"title": "x"}, source="amazon"),
            Record("w1", {"title": "y"}, source="walmart"),
            Record("w2", {"title": "z"}, source="walmart"),
        ]
        dataset = Dataset(records=records)
        assert dataset.sources == ("amazon", "walmart")
        assert {r.record_id for r in dataset.by_source("walmart")} == {"w1", "w2"}

    def test_subset_preserves_order_and_schema(self, toy_dataset):
        subset = toy_dataset.subset(["r3", "r1"])
        assert subset.record_ids == ["r3", "r1"]
        assert subset.attributes == toy_dataset.attributes

    def test_describe_reports_sparsity(self):
        records = [
            Record("r1", {"title": "a", "brand": None}),
            Record("r2", {"title": "b", "brand": "nike"}),
        ]
        dataset = Dataset(records=records, attributes=("title", "brand"))
        stats = dataset.describe()
        assert stats["num_records"] == 2
        assert stats["sparsity"] == pytest.approx(0.25)

    def test_iteration_and_len(self, toy_dataset):
        assert len(toy_dataset) == 6
        assert [r.record_id for r in toy_dataset] == [f"r{i}" for i in range(1, 7)]
