"""Tests for tokenization and n-gram extraction."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.text.ngrams import char_ngrams, ngram_profile, shared_ngrams, word_ngrams
from repro.text.tokenize import char_tokens, normalize, token_set, word_tokens

text_strategy = st.text(
    alphabet=st.characters(
        whitelist_categories=("Lu", "Ll", "Nd", "Zs"), whitelist_characters="-'/"
    ),
    max_size=40,
)


class TestTokenize:
    def test_normalize_lowercases_and_strips_punctuation(self):
        assert normalize("NIKE Men's, Air-Max!") == "nike men s air max"

    def test_word_tokens_keep_apostrophes(self):
        assert word_tokens("Men's Lunar Force") == ["men's", "lunar", "force"]

    def test_char_tokens_drop_spaces_by_default(self):
        assert char_tokens("a b") == ["a", "b"]
        assert char_tokens("a b", keep_spaces=True) == ["a", " ", "b"]

    def test_token_set_is_deduplicated(self):
        assert token_set("nike nike air") == {"nike", "air"}

    @given(text_strategy)
    def test_normalize_is_idempotent(self, text):
        assert normalize(normalize(text)) == normalize(text)


class TestCharNgrams:
    def test_short_string_returns_whole_string(self):
        assert char_ngrams("abc", n=4) == ["abc"]

    def test_empty_string_returns_empty_list(self):
        assert char_ngrams("", n=4) == []

    def test_expected_grams(self):
        assert char_ngrams("abcde", n=3) == ["abc", "bcd", "cde"]

    def test_padding_produces_boundary_grams(self):
        grams = char_ngrams("ab", n=3, pad=True)
        assert "##a" in grams and "b##" in grams

    def test_invalid_n_raises(self):
        with pytest.raises(ValueError):
            char_ngrams("abc", n=0)

    @given(text_strategy, st.integers(min_value=1, max_value=6))
    def test_gram_count_property(self, text, n):
        """Number of n-grams is max(len - n + 1, 0 or 1) over the normalized text."""
        grams = char_ngrams(text, n=n)
        normalized = normalize(text)
        if not normalized:
            assert grams == []
        elif len(normalized) < n:
            assert grams == [normalized]
        else:
            assert len(grams) == len(normalized) - n + 1


class TestWordNgrams:
    def test_bigrams(self):
        assert word_ngrams("nike air max", n=2) == ["nike air", "air max"]

    def test_short_input(self):
        assert word_ngrams("nike", n=2) == ["nike"]
        assert word_ngrams("", n=2) == []

    def test_invalid_n_raises(self):
        with pytest.raises(ValueError):
            word_ngrams("abc", n=0)


class TestProfiles:
    def test_ngram_profile_counts(self):
        profile = ngram_profile(["abcd", "bcde"], n=4)
        assert profile["abcd"] == 1
        assert profile["bcde"] == 1

    def test_shared_ngrams_symmetric(self):
        left, right = "nike air max", "nike air force"
        assert shared_ngrams(left, right) == shared_ngrams(right, left)
        assert (
            "nike" in {g for g in shared_ngrams(left, right)}
            or len(shared_ngrams(left, right)) > 0
        )
