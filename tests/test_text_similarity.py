"""Tests (including property-based tests) for string similarity measures."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.text.similarity import (
    SIMILARITY_FUNCTIONS,
    cosine_token_similarity,
    dice_coefficient,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    monge_elkan_similarity,
    overlap_coefficient,
    qgram_jaccard,
    token_jaccard,
)

short_text = st.text(alphabet="abcdefg 0123", max_size=12)


class TestLevenshtein:
    def test_known_distances(self):
        assert levenshtein_distance("kitten", "sitting") == 3
        assert levenshtein_distance("", "abc") == 3
        assert levenshtein_distance("abc", "abc") == 0

    def test_similarity_bounds(self):
        assert levenshtein_similarity("nike", "nike") == 1.0
        assert levenshtein_similarity("", "") == 1.0
        assert 0.0 <= levenshtein_similarity("nike", "adidas") < 1.0

    @given(short_text, short_text)
    @settings(max_examples=60)
    def test_distance_is_symmetric_metric(self, left, right):
        assert levenshtein_distance(left, right) == levenshtein_distance(right, left)
        assert levenshtein_distance(left, right) >= abs(len(left) - len(right))
        assert levenshtein_distance(left, right) <= max(len(left), len(right))

    @given(short_text, short_text, short_text)
    @settings(max_examples=40)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein_distance(a, c) <= levenshtein_distance(a, b) + levenshtein_distance(b, c)


class TestJaro:
    def test_identical_and_empty(self):
        assert jaro_similarity("nike", "nike") == 1.0
        assert jaro_similarity("", "nike") == 0.0

    def test_winkler_boosts_prefix(self):
        base = jaro_similarity("nikee", "nikes")
        winkler = jaro_winkler_similarity("nikee", "nikes")
        assert winkler >= base

    @given(short_text, short_text)
    @settings(max_examples=60)
    def test_jaro_winkler_bounded_and_symmetric(self, left, right):
        value = jaro_winkler_similarity(left, right)
        assert 0.0 <= value <= 1.0 + 1e-9
        assert value == pytest.approx(jaro_winkler_similarity(right, left))


class TestSetSimilarities:
    def test_jaccard_edge_cases(self):
        assert jaccard_similarity(set(), set()) == 1.0
        assert jaccard_similarity({"a"}, set()) == 0.0
        assert jaccard_similarity({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)

    def test_overlap_and_dice(self):
        assert overlap_coefficient({"a", "b"}, {"b"}) == 1.0
        assert dice_coefficient({"a", "b"}, {"b", "c"}) == pytest.approx(0.5)
        assert dice_coefficient(set(), set()) == 1.0

    @given(st.sets(st.integers(0, 20)), st.sets(st.integers(0, 20)))
    @settings(max_examples=60)
    def test_jaccard_bounds_and_symmetry(self, left, right):
        value = jaccard_similarity(left, right)
        assert 0.0 <= value <= 1.0
        assert value == jaccard_similarity(right, left)
        if left == right:
            assert value == 1.0


class TestTokenSimilarities:
    def test_token_jaccard(self):
        assert token_jaccard("nike air max", "nike air force") == pytest.approx(0.5)

    def test_qgram_jaccard_identical(self):
        assert qgram_jaccard("lunar force", "lunar force") == 1.0

    def test_cosine_bounds(self):
        assert cosine_token_similarity("a b c", "a b c") == pytest.approx(1.0)
        assert cosine_token_similarity("a b", "c d") == 0.0
        assert cosine_token_similarity("", "") == 1.0

    def test_monge_elkan_handles_empty(self):
        assert monge_elkan_similarity("", "") == 1.0
        assert monge_elkan_similarity("nike", "") == 0.0

    @given(short_text, short_text)
    @settings(max_examples=40)
    def test_registry_functions_are_bounded(self, left, right):
        """Every registered similarity is within [0, 1] (loss features rely on it)."""
        for name, function in SIMILARITY_FUNCTIONS.items():
            value = function(left, right)
            assert 0.0 <= value <= 1.0 + 1e-9, name
