"""Tests of the fit/serve lifecycle: ResolverModel, QuerySession, persistence."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.config import FlexERConfig, GNNConfig, GraphConfig, MatcherConfig
from repro.data.pairs import CandidateSet, LabeledPair
from repro.data.records import Dataset, Record
from repro.data.splits import DatasetSplit
from repro.datasets import BENCHMARK_LABELERS, load_benchmark
from repro.exceptions import IntentError, ModelError, QueryError
from repro.exec import make_executor, query_records_sharded
from repro.matching.solvers import InParallelSolver
from repro.model import MODEL_SCHEMA_VERSION, QuerySession, ResolverModel
from repro.pipeline import STAGE_MATCHER_FIT, STAGE_MODEL
from repro.registry import MODELS
from repro.resolver import Resolver


@pytest.fixture(scope="module")
def model_config() -> FlexERConfig:
    return FlexERConfig(
        matcher=MatcherConfig(hidden_dims=(24, 12), n_features=96, epochs=2, seed=5),
        graph=GraphConfig(k_neighbors=2),
        gnn=GNNConfig(hidden_dim=16, epochs=4, seed=5),
    )


@pytest.fixture(scope="module")
def model_world(model_config):
    """A fitted model plus the held-out records it can be queried with."""
    benchmark = load_benchmark("amazon_mi", num_pairs=80, products_per_domain=8, seed=7)
    labeler = BENCHMARK_LABELERS["amazon_mi"]
    products = benchmark.record_products

    def label_pair(left, right):
        return labeler.label_pair(products[left.record_id], products[right.record_id])

    records = list(benchmark.dataset.records)
    holdout = records[-4:]
    corpus = Dataset(
        records=records[:-4],
        name=benchmark.dataset.name,
        attributes=benchmark.dataset.attributes,
    )
    model = repro.fit(
        corpus, intents=labeler.intent_names, labeler=label_pair, config=model_config
    )
    return model, holdout, corpus


class TestFit:
    def test_fit_returns_model_with_corpus_result(self, model_world):
        model, _, corpus = model_world
        assert isinstance(model, ResolverModel)
        assert model.corpus is corpus
        assert model.fit_result is not None
        assert model.fit_result.blocking is not None
        statuses = model.fit_result.pipeline.stage_status()
        assert statuses[STAGE_MODEL] == "computed"
        assert statuses[STAGE_MATCHER_FIT] == "computed"

    def test_model_build_is_a_cacheable_stage(self, model_config, tiny_benchmark):
        from repro.pipeline import PipelineRunner

        runner = PipelineRunner()
        cold = runner.fit_model(tiny_benchmark.split, tiny_benchmark.intents, model_config)
        warm = runner.fit_model(tiny_benchmark.split, tiny_benchmark.intents, model_config)
        assert cold.pipeline.stage_status()[STAGE_MODEL] == "computed"
        assert warm.pipeline.stage_status()[STAGE_MODEL] == "hit"
        assert warm.model.fingerprint() == cold.model.fingerprint()

    def test_describe(self, model_world):
        model, _, _ = model_world
        description = model.describe()
        assert description["retriever"] == "ann_knn"
        assert description["schema_version"] == MODEL_SCHEMA_VERSION
        assert description["corpus_records"] == len(model.corpus)


class TestQueryBasics:
    def test_query_produces_aligned_outputs(self, model_world):
        model, holdout, _ = model_world
        result = model.query(holdout, k=3, mode="online")
        assert result.record_ids == tuple(r.record_id for r in holdout)
        assert result.intents == model.intents
        for intent in result.intents:
            assert result.probabilities[intent].shape == (len(result.pairs),)
            assert set(np.unique(result.predictions[intent])) <= {0, 1}
        # Every pair relates a query record to a corpus record.
        for pair in result.pairs:
            ids = pair.as_tuple()
            assert any(r.record_id in ids for r in holdout)
            assert any(record_id in model.corpus for record_id in ids)

    def test_intent_subset_query(self, model_world):
        model, holdout, _ = model_world
        target = model.intents[0]
        result = model.query(holdout[:2], intents=[target], k=2, mode="online")
        assert result.intents == (target,)

    def test_query_validation(self, model_world):
        model, holdout, corpus = model_world
        with pytest.raises(QueryError, match="at least one record"):
            model.query([])
        with pytest.raises(QueryError, match="duplicate"):
            model.query([holdout[0], holdout[0]])
        with pytest.raises(QueryError, match="already part of the fitted corpus"):
            model.query([corpus.records[0]])
        with pytest.raises(QueryError, match="mode"):
            model.query(holdout, mode="telepathic")
        with pytest.raises(IntentError):
            model.query(holdout, intents=["nonexistent"])
        with pytest.raises(QueryError, match="schema"):
            model.query([Record(record_id="zzz-new", values={"alien_column": "x"})])

    def test_exact_mode_records_matcher_cache_hit(self, model_world):
        model, holdout, _ = model_world
        result = model.query(holdout[:2], k=2, mode="exact")
        events = {event.stage: event for event in result.events}
        assert events[STAGE_MATCHER_FIT].cached

    def test_query_never_refits_components(self, model_world, monkeypatch):
        """Neither query mode may call any fit() on the fitted components."""
        model, holdout, _ = model_world

        def forbidden_fit(self, *args, **kwargs):  # pragma: no cover - trap
            raise AssertionError("query path re-fitted the solver")

        monkeypatch.setattr(InParallelSolver, "fit", forbidden_fit)
        monkeypatch.setattr(
            type(model.retriever), "fit", lambda *a, **k: pytest.fail("retriever refit")
        )
        exact = model.session()
        online = model.session()
        exact.query(holdout[:2], k=2, mode="exact")
        online.query(holdout[:2], k=2, mode="online")


class TestExactParity:
    def test_exact_query_matches_full_resolve_rerun(self, model_world, model_config):
        """The acceptance criterion: query() == a full repro.resolve() re-run
        whose candidate set includes the query pairs, bit for bit."""
        model, holdout, corpus = model_world
        result = model.query(holdout, k=3, mode="exact")
        assert result.pairs, "retriever produced no candidates"

        extended = Dataset(
            records=list(corpus.records) + holdout,
            name=corpus.name,
            attributes=corpus.attributes,
        )

        def rebuilt(part):
            return CandidateSet(extended, pairs=list(part), intents=model.intents)

        test = rebuilt(model.split.test)
        zeros = {intent: 0 for intent in model.intents}
        for pair in result.pairs:
            test.add(LabeledPair(pair=pair, labels=zeros))
        split = DatasetSplit(
            train=rebuilt(model.split.train), valid=rebuilt(model.split.valid), test=test
        )
        rerun = repro.resolve(split, config=model_config)
        num_query = len(result.pairs)
        for intent in model.intents:
            assert np.array_equal(
                rerun.solution.probabilities[intent][-num_query:],
                result.probabilities[intent],
            ), intent
            assert np.array_equal(
                rerun.solution.predictions[intent][-num_query:],
                result.predictions[intent],
            ), intent

    def test_repeated_exact_queries_hit_the_session_cache(self, model_world):
        model, holdout, _ = model_world
        session = model.session()
        cold = session.query(holdout[:2], k=2, mode="exact")
        warm = session.query(holdout[:2], k=2, mode="exact")
        warm_statuses = {event.stage: event.status for event in warm.events}
        assert set(warm_statuses.values()) == {"hit"}
        for intent in model.intents:
            assert np.array_equal(
                cold.probabilities[intent], warm.probabilities[intent]
            )


class TestPersistence:
    def test_save_load_round_trip_is_byte_identical_in_query(self, model_world, tmp_path):
        """The acceptance criterion: save/load round-trips reproduce query()
        outputs byte-for-byte, in both modes."""
        model, holdout, _ = model_world
        path = model.save(tmp_path / "model.npz")
        loaded = repro.load_model(path)
        assert loaded.fingerprint() == model.fingerprint()
        for mode in ("online", "exact"):
            original = model.query(holdout, k=3, mode=mode)
            restored = loaded.query(holdout, k=3, mode=mode)
            assert [p.as_tuple() for p in original.pairs] == [
                p.as_tuple() for p in restored.pairs
            ]
            for intent in model.intents:
                assert np.array_equal(
                    original.probabilities[intent].view(np.uint64),
                    restored.probabilities[intent].view(np.uint64),
                ), (mode, intent)

    def test_saved_artifact_dump_is_deterministic(self, model_world, tmp_path):
        model, _, _ = model_world
        first = model.save(tmp_path / "a.npz")
        second = model.save(tmp_path / "b.npz")
        assert first.read_bytes() == second.read_bytes()

    def test_load_rejects_non_model_artifacts(self, tmp_path):
        from repro.data.serialization import write_artifact

        path = write_artifact(tmp_path / "other.npz", {"x": np.zeros(3)}, {"kind": "misc"})
        with pytest.raises(ModelError, match="not a resolver model"):
            ResolverModel.load(path)

    def test_load_rejects_newer_model_schema(self, model_world, tmp_path):
        from repro.data.serialization import read_artifact, write_artifact

        model, _, _ = model_world
        path = model.save(tmp_path / "model.npz")
        arrays, metadata = read_artifact(path)
        metadata["model"]["schema_version"] = MODEL_SCHEMA_VERSION + 1
        newer = write_artifact(tmp_path / "newer.npz", arrays, metadata)
        with pytest.raises(ModelError, match="schema version"):
            ResolverModel.load(newer)

    def test_load_survives_library_version_bumps(self, model_world, tmp_path):
        """The fingerprint covers the stored document, not the current
        library version — artifacts keep loading across releases."""
        import repro.model as model_module

        model, holdout, _ = model_world
        path = model.save(tmp_path / "model.npz")
        original_version = model_module._library_version
        model_module._library_version = original_version + ".post1"
        try:
            loaded = ResolverModel.load(path)
        finally:
            model_module._library_version = original_version
        result = loaded.query(holdout[:2], k=2, mode="online")
        assert len(result.record_ids) == 2

    def test_load_requires_a_fingerprint(self, model_world, tmp_path):
        from repro.data.serialization import read_artifact, write_artifact

        model, _, _ = model_world
        path = model.save(tmp_path / "model.npz")
        arrays, metadata = read_artifact(path)
        del metadata["fingerprint"]
        stripped = write_artifact(tmp_path / "stripped.npz", arrays, metadata)
        with pytest.raises(ModelError, match="no fingerprint"):
            ResolverModel.load(stripped)

    def test_load_detects_tampered_payload(self, model_world, tmp_path):
        from repro.data.serialization import read_artifact, write_artifact

        model, _, _ = model_world
        path = model.save(tmp_path / "model.npz")
        arrays, metadata = read_artifact(path)
        key = next(k for k in arrays if k.startswith("repr::"))
        arrays[key] = arrays[key] + 1.0
        tampered = write_artifact(tmp_path / "tampered.npz", arrays, metadata)
        with pytest.raises(ModelError, match="fingerprint"):
            ResolverModel.load(tampered)

    def test_registry_round_trip(self, model_world, tmp_path):
        model, holdout, _ = model_world
        spec = model.to_spec()
        assert spec["type"] == "flexer"
        clone = MODELS.create(spec, arrays=model.payload_arrays())
        original = model.query(holdout[:2], k=2, mode="online")
        cloned = clone.query(holdout[:2], k=2, mode="online")
        for intent in model.intents:
            assert np.array_equal(
                original.probabilities[intent], cloned.probabilities[intent]
            )


class TestShardedQueries:
    @pytest.mark.parametrize("executor_spec", [
        {"type": "threads", "workers": 2},
        {"type": "threads", "workers": 3},
        {"type": "processes", "workers": 2},
    ])
    def test_sharded_query_is_bit_identical_to_serial(self, model_world, executor_spec):
        model, holdout, _ = model_world
        serial = model.query(holdout, k=3, mode="online")
        executor = make_executor(executor_spec)
        sharded = query_records_sharded(model, holdout, executor, k=3)
        assert [p.as_tuple() for p in serial.pairs] == [
            p.as_tuple() for p in sharded.pairs
        ]
        assert serial.record_ids == sharded.record_ids
        for intent in serial.intents:
            assert np.array_equal(
                serial.probabilities[intent].view(np.uint64),
                sharded.probabilities[intent].view(np.uint64),
            ), intent

    def test_sharded_query_validates_the_whole_batch(self, model_world):
        """Cross-shard duplicates must fail exactly like the serial path."""
        model, holdout, _ = model_world
        executor = make_executor({"type": "threads", "workers": 2})
        with pytest.raises(QueryError, match="duplicate"):
            query_records_sharded(model, [holdout[0], holdout[0]], executor, k=2)

    def test_online_results_are_batch_independent(self, model_world):
        """Each record's prediction is independent of its micro-batch."""
        model, holdout, _ = model_world
        batch = model.query(holdout, k=3, mode="online")
        for record in holdout:
            single = model.query([record], k=3, mode="online")
            rows = [
                index
                for index, pair in enumerate(batch.pairs)
                if record.record_id in pair.as_tuple()
            ]
            for intent in batch.intents:
                assert np.array_equal(
                    batch.probabilities[intent][rows], single.probabilities[intent]
                )

    def test_query_executor_kwarg_routes_through_sharding(self, model_world):
        model, holdout, _ = model_world
        serial = model.query(holdout, k=3, mode="online")
        sharded = model.query(
            holdout, k=3, mode="online", executor=make_executor({"type": "threads", "workers": 2})
        )
        for intent in serial.intents:
            assert np.array_equal(
                serial.probabilities[intent], sharded.probabilities[intent]
            )


class TestQueryResult:
    def test_helpers(self, model_world):
        model, holdout, _ = model_world
        result = model.query(holdout, k=3, mode="online")
        record_id = holdout[0].record_id
        for pair in result.pairs_for(record_id):
            assert record_id in pair.as_tuple()
        intent = model.intents[0]
        matched = result.matches(intent)
        assert len(matched) == int(result.predictions[intent].sum())
        with pytest.raises(QueryError):
            result.pairs_for("not-a-query-record")
        arrays, metadata = result.as_arrays()
        assert metadata["num_pairs"] == len(result)
        assert arrays["pairs"].shape == (len(result), 2)

    def test_empty_retrieval_yields_empty_result(self, model_config, tiny_benchmark):
        """A record with no shared blocking keys retrieves nothing."""
        resolver = Resolver(config=model_config)
        model = resolver.fit(tiny_benchmark.split, retriever="blocker")
        alien = Record(record_id="qqq-alien", values={"title": "zzzzqqqq"})
        result = model.query([alien], k=3, mode="online")
        assert len(result) == 0
        assert result.candidates_per_record["qqq-alien"] == []


class TestSumAggregatorModels:
    def test_online_mode_honours_sum_aggregation(self, tiny_benchmark):
        """Frozen inference must not mean-normalize a sum-aggregator model."""
        config = FlexERConfig(
            matcher=MatcherConfig(hidden_dims=(16, 8), n_features=64, epochs=1, seed=5),
            graph=GraphConfig(k_neighbors=2),
            gnn=GNNConfig(hidden_dim=8, epochs=2, seed=5, aggregator="sum"),
        )
        model = Resolver(config=config).fit(tiny_benchmark.split)
        probe = Record(record_id="zz-probe", values={"title": "nike air max running"})
        session = model.session()
        result = session.query([probe], k=2, mode="online")
        for intent in model.intents:
            assert np.all((result.probabilities[intent] >= 0) & (result.probabilities[intent] <= 1))
        # The sum model's online path must diverge from a mean-normalized
        # replay of the same computation: monkey-free check via a mean
        # model sharing every other hyper-parameter.
        mean_model = Resolver(
            config=FlexERConfig(
                matcher=config.matcher, graph=config.graph,
                gnn=GNNConfig(hidden_dim=8, epochs=2, seed=5, aggregator="mean"),
            )
        ).fit(tiny_benchmark.split)
        mean_result = mean_model.session().query([probe], k=2, mode="online")
        assert result.pairs == mean_result.pairs
        assert any(
            not np.array_equal(result.probabilities[i], mean_result.probabilities[i])
            for i in model.intents
        )


class TestQuerySessionConstruction:
    def test_exact_cache_is_bounded(self, model_world, monkeypatch):
        """Distinct exact batches must not grow the session cache forever."""
        from repro.pipeline import STAGE_MATCHER_FIT as MATCHER_STAGE

        model, holdout, _ = model_world
        session = QuerySession(model)
        monkeypatch.setattr(QuerySession, "EXACT_CACHE_MAX_ARTIFACTS", 1)
        session.query(holdout[:2], k=2, mode="exact")
        before = session._runner.cache.memory_artifacts
        result = session.query(holdout[2:4], k=2, mode="exact")
        after = session._runner.cache.memory_artifacts
        # The second batch pruned back to the seeded matcher artifact
        # before running, so the cache holds one batch's stages, not two.
        assert after <= before
        assert {event.stage: event.status for event in result.events}[
            MATCHER_STAGE
        ] == "hit"

    def test_session_is_reusable_and_shares_state(self, model_world):
        model, holdout, _ = model_world
        session = QuerySession(model)
        first = session.query(holdout[:2], k=2, mode="online")
        second = session.query(holdout[2:4], k=2, mode="online")
        assert first.mode == second.mode == "online"
        # Frozen per-intent states and layer indexes are built once.
        assert set(session._frozen) == set(model.intents)
