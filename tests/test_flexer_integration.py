"""Integration tests for the end-to-end FlexER pipeline."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core import FlexER, MIERSolution
from repro.evaluation import evaluate_solution
from repro.exceptions import IntentError, MatchingError, NotFittedError
from repro.matching import InParallelSolver, NaiveSolver


@pytest.fixture(scope="module")
def flexer_result(tiny_benchmark, fast_config):
    """A single shared FlexER run over the tiny benchmark."""
    flexer = FlexER(tiny_benchmark.intents, fast_config)
    split = tiny_benchmark.split
    flexer.fit(split.train, split.valid if len(split.valid) > 0 else None)
    result = flexer.predict(split.test)
    return flexer, result


class TestFlexERPipeline:
    def test_requires_intents_and_valid_source(self):
        with pytest.raises(IntentError):
            FlexER([])
        with pytest.raises(MatchingError):
            FlexER(["equivalence"], representation_source="transformer")

    def test_predict_requires_fit(self, tiny_benchmark, fast_config):
        flexer = FlexER(tiny_benchmark.intents, fast_config)
        with pytest.raises(NotFittedError):
            flexer.predict(tiny_benchmark.split.test)

    def test_solution_covers_all_intents(self, tiny_benchmark, flexer_result):
        _, result = flexer_result
        solution = result.solution
        assert set(solution.intents) == set(tiny_benchmark.intents)
        for intent in tiny_benchmark.intents:
            prediction = solution.prediction(intent)
            assert prediction.shape == (len(tiny_benchmark.split.test),)
            assert set(np.unique(prediction)) <= {0, 1}

    def test_probabilities_are_valid(self, flexer_result):
        _, result = flexer_result
        for probabilities in result.solution.probabilities.values():
            assert probabilities.min() >= 0.0 and probabilities.max() <= 1.0

    def test_graph_dimensions(self, tiny_benchmark, flexer_result, fast_config):
        _, result = flexer_result
        split = tiny_benchmark.split
        expected_pairs = len(split.train) + len(split.valid) + len(split.test)
        assert result.graph.num_pairs == expected_pairs
        assert result.graph.num_intents == len(tiny_benchmark.intents)
        # Node features: the latent representation plus the matcher's score.
        assert result.graph.feature_dim == fast_config.matcher.representation_dim + 1

    def test_timings_recorded(self, flexer_result):
        _, result = flexer_result
        timings = result.timings
        assert timings.matcher_training_seconds > 0
        assert timings.graph_build_seconds > 0
        assert timings.gnn_total_seconds > 0
        assert set(result.timings.gnn_seconds_per_intent) == set(result.solution.intents)

    def test_evaluation_is_reasonable(self, flexer_result):
        _, result = flexer_result
        evaluation = evaluate_solution(result.solution)
        assert 0.0 <= evaluation.mi_accuracy <= 1.0
        assert evaluation.mi_f1 > 0.3

    def test_intent_subset_restricts_graph_and_targets(self, tiny_benchmark, fast_config):
        flexer = FlexER(tiny_benchmark.intents, fast_config)
        flexer.fit(tiny_benchmark.split.train, tiny_benchmark.split.valid)
        subset = ("equivalence", "brand")
        result = flexer.predict(
            tiny_benchmark.split.test,
            intent_subset=subset,
            target_intents=("equivalence",),
        )
        assert result.graph.intents == subset
        assert set(result.solution.intents) == {"equivalence"}

    def test_target_outside_subset_rejected(self, tiny_benchmark, fast_config):
        flexer = FlexER(tiny_benchmark.intents, fast_config)
        flexer.fit(tiny_benchmark.split.train)
        with pytest.raises(IntentError):
            flexer.predict(
                tiny_benchmark.split.test,
                intent_subset=("equivalence",),
                target_intents=("brand",),
            )

    def test_unknown_subset_intent_rejected(self, tiny_benchmark, fast_config):
        flexer = FlexER(tiny_benchmark.intents, fast_config)
        flexer.fit(tiny_benchmark.split.train)
        with pytest.raises(IntentError):
            flexer.predict(tiny_benchmark.split.test, intent_subset=("nonexistent",))

    def test_multi_label_solver_spec_runs(self, tiny_benchmark, fast_config):
        config = replace(fast_config, solver="multi_label")
        flexer = FlexER(tiny_benchmark.intents, config)
        assert flexer.representation_source == "multi_label"
        flexer.fit(tiny_benchmark.split.train, tiny_benchmark.split.valid)
        result = flexer.predict(tiny_benchmark.split.test, target_intents=("equivalence",))
        assert set(result.solution.intents) == {"equivalence"}

    def test_run_split_shim_warns_and_matches_fit_predict(self, tiny_benchmark, fast_config):
        """The deprecated one-shot pattern still works, with a warning."""
        split = tiny_benchmark.split
        shimmed = FlexER(tiny_benchmark.intents, fast_config)
        with pytest.warns(DeprecationWarning, match="run_split"):
            old = shimmed.run_split(split, target_intents=("equivalence",))
        explicit = FlexER(tiny_benchmark.intents, fast_config)
        explicit.fit(split.train, split.valid if len(split.valid) > 0 else None)
        new = explicit.predict(split.test, target_intents=("equivalence",))
        assert np.array_equal(
            old.solution.probabilities["equivalence"],
            new.solution.probabilities["equivalence"],
        )

    def test_predict_timings_do_not_alias_or_accumulate(self, tiny_benchmark, fast_config):
        flexer = FlexER(tiny_benchmark.intents, fast_config)
        flexer.fit(tiny_benchmark.split.train, tiny_benchmark.split.valid)
        first = flexer.predict(tiny_benchmark.split.test, target_intents=("equivalence",))
        first_gnn = dict(first.timings.gnn_seconds_per_intent)
        second = flexer.predict(tiny_benchmark.split.test)
        # Each predict owns a fresh timings object; the second run must
        # neither mutate the first result's timings nor accumulate them.
        assert first.timings is not second.timings
        assert first.timings.gnn_seconds_per_intent == first_gnn
        assert set(first_gnn) == {"equivalence"}
        assert set(second.timings.gnn_seconds_per_intent) == set(tiny_benchmark.intents)
        assert first.timings.matcher_training_seconds == pytest.approx(
            second.timings.matcher_training_seconds
        )


class TestExpectedResultShape:
    """Coarse checks that the paper's qualitative findings hold."""

    def test_flexer_beats_naive_on_mi_recall(self, tiny_benchmark, fast_config, flexer_result):
        _, result = flexer_result
        flexer_eval = evaluate_solution(result.solution)
        naive = NaiveSolver(
            tiny_benchmark.intents, matcher_config=fast_config.matcher
        ).fit(tiny_benchmark.split.train)
        naive_eval = evaluate_solution(
            MIERSolution.from_mapping(
                tiny_benchmark.split.test, naive.predict(tiny_benchmark.split.test)
            )
        )
        assert flexer_eval.mi_recall > naive_eval.mi_recall
        assert flexer_eval.mi_f1 > naive_eval.mi_f1

    def test_flexer_at_least_matches_in_parallel(self, tiny_benchmark, fast_config, flexer_result):
        _, result = flexer_result
        flexer_eval = evaluate_solution(result.solution)
        parallel = InParallelSolver(
            tiny_benchmark.intents, matcher_config=fast_config.matcher
        ).fit(tiny_benchmark.split.train)
        parallel_eval = evaluate_solution(
            MIERSolution.from_mapping(
                tiny_benchmark.split.test, parallel.predict(tiny_benchmark.split.test)
            )
        )
        # Allow a small tolerance: on the tiny test benchmark the gap can be noisy.
        assert flexer_eval.mi_f1 >= parallel_eval.mi_f1 - 0.05
