"""Shared fixtures for the test suite.

Fixtures build *small* synthetic benchmarks and fast configurations so
the full suite stays CPU-friendly; benchmark-scale runs live under
``benchmarks/``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import FlexERConfig, GNNConfig, GraphConfig, MatcherConfig
from repro.data.pairs import CandidateSet, LabeledPair, RecordPair
from repro.data.records import Dataset, Record
from repro.datasets import load_benchmark


@pytest.fixture(scope="session")
def fast_config() -> FlexERConfig:
    """A configuration scaled down for unit tests."""
    return FlexERConfig(
        matcher=MatcherConfig(hidden_dims=(24, 12), n_features=96, epochs=6, seed=5),
        graph=GraphConfig(k_neighbors=3),
        gnn=GNNConfig(hidden_dim=16, epochs=12, seed=5),
    )


@pytest.fixture(scope="session")
def tiny_benchmark():
    """A tiny AmazonMI-like benchmark shared across integration tests."""
    return load_benchmark("amazon_mi", num_pairs=120, products_per_domain=12, seed=3)


@pytest.fixture(scope="session")
def small_walmart_benchmark():
    """A tiny Walmart-Amazon-like benchmark (clean-clean structure)."""
    return load_benchmark("walmart_amazon", num_pairs=120, products_per_domain=10, seed=5)


@pytest.fixture(scope="session")
def small_wdc_benchmark():
    """A tiny WDC-like benchmark."""
    return load_benchmark("wdc", num_pairs=120, products_per_domain=12, seed=7)


@pytest.fixture
def toy_dataset() -> Dataset:
    """The six-record running example of the paper (Table 1)."""
    titles = {
        "r1": "Nike Men's Lunar Force 1 Duckboot",
        "r2": "NIKE Men Lunar Force 1 Duckboot, Black/Dark Loden-BROGHT Crimson",
        "r3": "NIKE Men's Air Max Stutter Step Ankle-High Basketball Shoe",
        "r4": "Nike Men's Air Max 2016 Running Shoe",
        "r5": "adidas Performance Men's D Rose 6 Boost Primeknit Basketball",
        "r6": "The Man Who Tried to Get Away",
    }
    records = [Record(record_id=rid, values={"title": title}) for rid, title in titles.items()]
    return Dataset(records=records, name="table1", attributes=("title",))


@pytest.fixture
def toy_candidates(toy_dataset: Dataset) -> CandidateSet:
    """Labeled candidate pairs over the Table 1 records for two intents."""
    labels = {
        ("r1", "r2"): {"equivalence": 1, "brand": 1},
        ("r1", "r3"): {"equivalence": 0, "brand": 1},
        ("r1", "r4"): {"equivalence": 0, "brand": 1},
        ("r1", "r5"): {"equivalence": 0, "brand": 0},
        ("r1", "r6"): {"equivalence": 0, "brand": 0},
        ("r3", "r5"): {"equivalence": 0, "brand": 0},
        ("r3", "r4"): {"equivalence": 0, "brand": 1},
        ("r2", "r3"): {"equivalence": 0, "brand": 1},
        ("r4", "r5"): {"equivalence": 0, "brand": 0},
        ("r5", "r6"): {"equivalence": 0, "brand": 0},
    }
    candidates = CandidateSet(toy_dataset, intents=("equivalence", "brand"))
    for (left, right), pair_labels in labels.items():
        candidates.add(LabeledPair(pair=RecordPair(left, right), labels=pair_labels))
    return candidates


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(123)
