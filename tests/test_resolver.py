"""Tests for the Resolver facade and the end-to-end raw-records path."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import FlexERConfig, MatcherConfig, GNNConfig, GraphConfig, Resolver
from repro.core import MIERSolution
from repro.data.pairs import RecordPair
from repro.datasets import BENCHMARK_LABELERS
from repro.exceptions import BlockingError, LabelingError
from repro.pipeline import ArtifactCache


@pytest.fixture(scope="module")
def raw_benchmark():
    """A tiny benchmark used as the raw-records source of truth."""
    return repro.load_benchmark("amazon_mi", num_pairs=80, products_per_domain=8, seed=11)


@pytest.fixture(scope="module")
def record_labeler(raw_benchmark):
    """Ground-truth labeling function over records (via product metadata)."""
    labeler = BENCHMARK_LABELERS["amazon_mi"]
    products = raw_benchmark.record_products

    def label(left, right):
        return labeler.label_pair(products[left.record_id], products[right.record_id])

    return label


@pytest.fixture(scope="module")
def resolve_config():
    """A seconds-scale configuration with a token blocker."""
    return FlexERConfig(
        matcher=MatcherConfig(hidden_dims=(16, 8), n_features=64, epochs=2, seed=9),
        graph=GraphConfig(k_neighbors=2),
        gnn=GNNConfig(hidden_dim=8, epochs=4, seed=9),
        blocker={"type": "token", "min_shared": 1},
    )


@pytest.fixture(scope="module")
def raw_result(raw_benchmark, record_labeler, resolve_config):
    """One shared end-to-end resolution from raw records."""
    return repro.resolve(
        raw_benchmark.dataset,
        intents=raw_benchmark.intents,
        labeler=record_labeler,
        config=resolve_config,
        target_intents=("equivalence", "brand"),
    )


class TestRawRecordsPath:
    def test_produces_mier_solution_from_raw_records(self, raw_result, raw_benchmark):
        assert isinstance(raw_result.solution, MIERSolution)
        assert set(raw_result.solution.intents) == {"equivalence", "brand"}
        assert raw_result.intents == raw_benchmark.intents
        for intent in raw_result.solution.intents:
            prediction = raw_result.solution.prediction(intent)
            assert prediction.shape == (len(raw_result.split.test),)
            assert set(np.unique(prediction)) <= {0, 1}

    def test_candidates_come_from_blocking_not_the_benchmark(
        self, raw_result, raw_benchmark
    ):
        assert raw_result.candidates is not None
        assert len(raw_result.candidates) != len(raw_benchmark.candidates)
        sizes = raw_result.split.sizes()
        assert sum(sizes.values()) == len(raw_result.candidates)
        assert sizes["train"] > sizes["test"] > 0

    def test_blocking_quality_reported_with_exhaustive_golden(self, raw_result):
        quality = raw_result.blocking
        assert quality is not None
        assert 0.0 < quality.reduction_ratio < 1.0
        assert quality.num_candidate_pairs < quality.num_admissible_pairs
        assert quality.pair_completeness is not None
        assert set(quality.pair_completeness) == set(raw_result.intents)
        for value in quality.pair_completeness.values():
            assert 0.0 <= value <= 1.0

    def test_intent_evaluations_align_with_test_split(self, raw_result):
        evaluations = raw_result.intent_evaluations()
        assert set(evaluations) == {"equivalence", "brand"}
        for evaluation in evaluations.values():
            assert 0.0 <= evaluation.f1 <= 1.0

    def test_every_stage_constructed_through_registry_specs(self, raw_result):
        status = raw_result.pipeline.stage_status()
        assert set(status) == {
            "matcher-fit",
            "representation",
            "graph-build",
            "gnn:equivalence",
            "gnn:brand",
        }


class TestWarmCache:
    def test_warm_rerun_hits_cache_byte_identically(
        self, raw_benchmark, record_labeler, resolve_config
    ):
        cache = ArtifactCache()
        kwargs = dict(
            intents=raw_benchmark.intents,
            labeler=record_labeler,
            target_intents=("equivalence",),
        )
        cold = Resolver(config=resolve_config, cache=cache).resolve(
            raw_benchmark.dataset, **kwargs
        )
        warm = Resolver(config=resolve_config, cache=cache).resolve(
            raw_benchmark.dataset, **kwargs
        )
        assert cold.pipeline.cached_stages == ()
        assert warm.pipeline.computed_stages == ()
        for intent in cold.solution.intents:
            assert (
                warm.solution.probabilities[intent].tobytes()
                == cold.solution.probabilities[intent].tobytes()
            )


class TestPreBuiltInputs:
    def test_accepts_dataset_split(self, raw_benchmark, resolve_config):
        result = repro.resolve(
            raw_benchmark.split, config=resolve_config, target_intents=("equivalence",)
        )
        assert result.candidates is None
        assert result.blocking is None
        assert set(result.solution.intents) == {"equivalence"}
        assert result.split is raw_benchmark.split

    def test_accepts_candidate_set(self, raw_benchmark, resolve_config):
        result = repro.resolve(
            raw_benchmark.candidates,
            config=resolve_config,
            target_intents=("equivalence",),
        )
        assert result.candidates is raw_benchmark.candidates
        sizes = result.split.sizes()
        assert sum(sizes.values()) == len(raw_benchmark.candidates)


class TestLabelsMapping:
    def test_labels_mapping_with_default_for_unlisted_pairs(self, raw_benchmark):
        dataset = raw_benchmark.dataset
        golden = {
            labeled.pair: dict(labeled.labels) for labeled in raw_benchmark.candidates
        }
        config = FlexERConfig(
            matcher=MatcherConfig(hidden_dims=(16, 8), n_features=64, epochs=1, seed=9),
            graph=GraphConfig(k_neighbors=2),
            gnn=GNNConfig(hidden_dim=8, epochs=2, seed=9),
            blocker={"type": "token", "min_shared": 1},
        )
        result = repro.resolve(
            dataset,
            labels=golden,
            config=config,
            target_intents=("equivalence",),
        )
        # Intents are inferred from the mapping's entries.
        assert result.intents == raw_benchmark.intents
        # Pairs the mapping does not list were labeled with the default 0.
        assert result.candidates is not None
        covered = sum(1 for pair in result.candidates.pairs if pair in golden)
        assert 0 < covered < len(result.candidates)
        # Golden positives for completeness come from the mapping itself.
        assert result.blocking is not None
        assert result.blocking.pair_completeness is not None

    def test_same_source_golden_positives_excluded_for_cross_source_blockers(self):
        from repro.data.records import Dataset, Record

        records = [
            Record("a1", {"title": "x"}, source="a"),
            Record("a2", {"title": "x"}, source="a"),
            Record("b1", {"title": "x"}, source="b"),
        ]
        dataset = Dataset(records=records, name="clean-clean")
        resolver = Resolver(
            config=FlexERConfig(blocker={"type": "full", "cross_source_only": True})
        )
        pairs = resolver.block(dataset)
        # The same-source positive ("a1","a2") is inadmissible for this
        # blocker, so it must not count against pair completeness.
        labels = {
            ("a1", "a2"): {"equivalence": 1},
            ("a1", "b1"): {"equivalence": 1},
        }
        quality = resolver._blocking_quality(
            dataset, pairs, ("equivalence",), labels, None, max_exhaustive_records=10
        )
        assert quality.pair_completeness == {"equivalence": 1.0}

    def test_labels_mapping_matching_nothing_raises(self, raw_benchmark):
        with pytest.raises(LabelingError, match="none of the"):
            Resolver().label_candidates(
                raw_benchmark.dataset,
                raw_benchmark.candidates.pairs[:3],
                intents=("equivalence",),
                labels={("zz1", "zz2"): {"equivalence": 1}},
            )

    def test_tuple_keys_are_canonicalized(self, raw_benchmark):
        resolver = Resolver()
        pair = raw_benchmark.candidates.pairs[0]
        labels = {(pair.right_id, pair.left_id): {"equivalence": 1}}
        candidates = resolver.label_candidates(
            raw_benchmark.dataset,
            [pair],
            intents=("equivalence",),
            labels=labels,
        )
        assert candidates.labels("equivalence").tolist() == [1]


class TestErrors:
    def test_labels_and_labeler_together_rejected(self, raw_benchmark, record_labeler):
        with pytest.raises(LabelingError):
            Resolver().label_candidates(
                raw_benchmark.dataset,
                raw_benchmark.candidates.pairs[:2],
                intents=("equivalence",),
                labels={},
                labeler=record_labeler,
            )

    def test_missing_ground_truth_rejected(self, raw_benchmark):
        with pytest.raises(LabelingError):
            repro.resolve(raw_benchmark.dataset)

    def test_empty_blocking_result_raises(self, raw_benchmark, record_labeler):
        config = FlexERConfig(blocker={"type": "token", "min_shared": 50})
        with pytest.raises(BlockingError):
            repro.resolve(
                raw_benchmark.dataset, labeler=record_labeler, config=config
            )

    def test_unsupported_input_type_rejected(self):
        with pytest.raises(TypeError):
            repro.resolve([RecordPair("a", "b")])

    def test_unknown_requested_intent_rejected(self, raw_benchmark, resolve_config):
        with pytest.raises(LabelingError):
            repro.resolve(
                raw_benchmark.split, intents=("nonexistent",), config=resolve_config
            )
