"""Tests for the blocking phase (q-gram and token blockers)."""

from __future__ import annotations

import pytest

from repro.blocking import BlockingReport, QGramBlocker, TokenBlocker
from repro.data.pairs import RecordPair
from repro.data.records import Dataset, Record
from repro.exceptions import BlockingError


class TestQGramBlocker:
    def test_duplicate_titles_survive_blocking(self, toy_dataset):
        pairs = QGramBlocker(q=4).block(toy_dataset)
        assert RecordPair("r1", "r2") in pairs

    def test_unrelated_records_do_not_survive(self, toy_dataset):
        pairs = QGramBlocker(q=4, min_shared=3).block(toy_dataset)
        assert RecordPair("r1", "r6") not in pairs

    def test_no_self_pairs_and_no_duplicates(self, toy_dataset):
        pairs = QGramBlocker(q=4).block(toy_dataset)
        assert len(pairs) == len(set(pairs))
        assert all(pair.left_id != pair.right_id for pair in pairs)

    def test_min_shared_monotonicity(self, toy_dataset):
        loose = set(QGramBlocker(q=4, min_shared=1).block(toy_dataset))
        strict = set(QGramBlocker(q=4, min_shared=5).block(toy_dataset))
        assert strict <= loose

    def test_cross_source_only(self):
        records = [
            Record("w1", {"title": "nike air max running shoe"}, source="walmart"),
            Record("a1", {"title": "nike air max running shoe"}, source="amazon"),
            Record("a2", {"title": "nike air max running shoes men"}, source="amazon"),
        ]
        dataset = Dataset(records=records)
        pairs = QGramBlocker(q=4, cross_source_only=True).block(dataset)
        assert RecordPair("a1", "a2") not in pairs
        assert RecordPair("w1", "a1") in pairs

    def test_invalid_parameters_rejected(self):
        with pytest.raises(BlockingError):
            QGramBlocker(q=0)
        with pytest.raises(BlockingError):
            QGramBlocker(min_shared=0)
        with pytest.raises(BlockingError):
            QGramBlocker(max_block_size=1)

    def test_max_block_size_prunes_stop_grams(self):
        records = [
            Record(f"r{i}", {"title": f"common prefix text item {i}"}) for i in range(12)
        ]
        dataset = Dataset(records=records)
        unlimited = QGramBlocker(q=4, max_block_size=None).block(dataset)
        limited = QGramBlocker(q=4, max_block_size=5).block(dataset)
        assert len(limited) <= len(unlimited)


class TestTokenBlocker:
    def test_shared_tokens_create_pairs(self, toy_dataset):
        pairs = TokenBlocker(min_shared=2).block(toy_dataset)
        assert RecordPair("r1", "r2") in pairs

    def test_stopwords_are_ignored(self):
        records = [
            Record("r1", {"title": "the new shoe for the season"}),
            Record("r2", {"title": "the new watch for the season"}),
        ]
        dataset = Dataset(records=records)
        pairs = TokenBlocker(min_shared=3).block(dataset)
        # "the", "new", "for" are stopwords; only "season" is shared.
        assert pairs == []

    def test_min_token_length_filters_short_tokens(self):
        records = [
            Record("r1", {"title": "ab cd nike"}),
            Record("r2", {"title": "ab cd adidas"}),
        ]
        dataset = Dataset(records=records)
        assert TokenBlocker(min_shared=1, min_token_length=3).block(dataset) == []

    def test_invalid_parameters_rejected(self):
        with pytest.raises(BlockingError):
            TokenBlocker(min_shared=0)
        with pytest.raises(BlockingError):
            TokenBlocker(min_token_length=0)


class TestBlockingReport:
    def test_reduction_ratio(self, toy_dataset):
        pairs = QGramBlocker(q=4).block(toy_dataset)
        report = BlockingReport.from_result(toy_dataset, pairs)
        assert report.num_records == len(toy_dataset)
        assert report.num_candidate_pairs == len(pairs)
        assert 0.0 <= report.reduction_ratio <= 1.0

    def test_empty_dataset_report(self):
        dataset = Dataset(records=[])
        report = BlockingReport.from_result(dataset, [])
        assert report.reduction_ratio == 0.0


class TestFullBlocker:
    def test_emits_every_admissible_pair(self, toy_dataset):
        from repro.blocking import FullBlocker

        pairs = FullBlocker().block(toy_dataset)
        n = len(toy_dataset)
        assert len(pairs) == n * (n - 1) // 2
        assert len(pairs) == len(set(pairs))
        assert pairs == sorted(pairs)

    def test_cross_source_only_restricts_pairs(self):
        from repro.blocking import FullBlocker

        records = [
            Record("w1", {"title": "x"}, source="walmart"),
            Record("a1", {"title": "x"}, source="amazon"),
            Record("a2", {"title": "y"}, source="amazon"),
        ]
        dataset = Dataset(records=records)
        pairs = FullBlocker(cross_source_only=True).block(dataset)
        assert set(pairs) == {RecordPair("a1", "w1"), RecordPair("a2", "w1")}

    def test_max_records_guard(self, toy_dataset):
        from repro.blocking import FullBlocker

        with pytest.raises(BlockingError):
            FullBlocker(max_records=3).block(toy_dataset)
        with pytest.raises(BlockingError):
            FullBlocker(max_records=1)
