"""Tests for the ``repro.serve`` micro-batched asyncio serving layer.

Covers the serving correctness contract: coalesced micro-batches are
bit-identical to per-request serial queries, exact mode is never
coalesced, backpressure rejects fast, deadlines cancel cleanly,
client disconnects do not poison in-flight batches, and memory-mapped
tenants answer byte-identically to eagerly loaded ones.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import shutil

import numpy as np
import pytest

import repro
from repro.config import FlexERConfig, GNNConfig, GraphConfig, MatcherConfig
from repro.data.records import Dataset, Record
from repro.datasets import BENCHMARK_LABELERS, load_benchmark
from repro.exceptions import (
    ConfigurationError,
    QueryTimeoutError,
    ReloadError,
    ServeError,
    ServerOverloadedError,
)
from repro.model import ResolverModel
from repro.serve import (
    DEFAULT_MODEL,
    AsyncResolverServer,
    ModelRegistry,
    ServeClient,
    ServeConfig,
)


@pytest.fixture(scope="module")
def serve_world(tmp_path_factory):
    """A fitted model, its saved artifact, and held-out query records."""
    benchmark = load_benchmark("amazon_mi", num_pairs=80, products_per_domain=8, seed=11)
    labeler = BENCHMARK_LABELERS["amazon_mi"]
    products = benchmark.record_products

    def label_pair(left, right):
        return labeler.label_pair(products[left.record_id], products[right.record_id])

    records = list(benchmark.dataset.records)
    holdout = records[-6:]
    corpus = Dataset(
        records=records[:-6],
        name=benchmark.dataset.name,
        attributes=benchmark.dataset.attributes,
    )
    config = FlexERConfig(
        matcher=MatcherConfig(hidden_dims=(24, 12), n_features=96, epochs=2, seed=5),
        graph=GraphConfig(k_neighbors=2),
        gnn=GNNConfig(hidden_dim=16, epochs=4, seed=5),
    )
    model = repro.fit(
        corpus, intents=labeler.intent_names, labeler=label_pair, config=config
    )
    path = tmp_path_factory.mktemp("serve") / "model.npz"
    model.save(path)
    return model, holdout, path


def run(coro):
    """Drive one coroutine to completion on a fresh event loop."""
    return asyncio.run(coro)


def assert_results_identical(left, right):
    """Assert two QueryResults are bit-identical through ``as_arrays``."""
    left_arrays, left_meta = left.as_arrays()
    right_arrays, right_meta = right.as_arrays()
    assert left_meta == right_meta
    assert sorted(left_arrays) == sorted(right_arrays)
    for name, array in left_arrays.items():
        other = right_arrays[name]
        assert array.dtype == other.dtype, name
        assert array.shape == other.shape, name
        assert np.asarray(array).tobytes() == np.asarray(other).tobytes(), name


def serial_results(model, records, k=5, mode="online"):
    """Per-request ground truth: one session, one query per record."""
    session = model.session()
    return [session.query([record], k=k, mode=mode) for record in records]


class TestCoalescing:
    def test_coalesced_results_bit_identical_to_serial(self, serve_world):
        model, holdout, _ = serve_world
        requests = [holdout[i % len(holdout)] for i in range(12)]
        config = ServeConfig(max_batch_size=6, max_wait_us=200_000, min_wait_us=200_000)

        async def fire():
            server = AsyncResolverServer(model, config)
            async with server:
                results = await asyncio.gather(
                    *(server.query([record], k=5, mode="online") for record in requests)
                )
            return results, server.stats

        served, stats = run(fire())
        assert stats.max_batch_observed > 1, "coalescing never happened"
        assert stats.requests_completed == len(requests)
        assert stats.requests_failed == 0
        for result, expected in zip(served, serial_results(model, requests)):
            assert_results_identical(result, expected)

    def test_exact_mode_is_never_coalesced(self, serve_world):
        model, holdout, _ = serve_world
        config = ServeConfig(max_batch_size=8, max_wait_us=200_000, min_wait_us=200_000)

        async def fire():
            server = AsyncResolverServer(model, config)
            async with server:
                results = await asyncio.gather(
                    *(
                        server.query([record], k=5, mode="exact")
                        for record in holdout[:2]
                    )
                )
            return results, server.stats

        served, stats = run(fire())
        assert stats.exact_queries == 2
        assert stats.max_batch_observed <= 1  # exact requests never join a batch
        for result, expected in zip(
            served, serial_results(model, holdout[:2], mode="exact")
        ):
            assert result.mode == "exact"
            assert_results_identical(result, expected)

    def test_conflicting_record_ids_split_into_disjoint_batches(self, serve_world):
        model, holdout, _ = serve_world
        record = holdout[0]
        config = ServeConfig(max_batch_size=8, max_wait_us=100_000, min_wait_us=100_000)

        async def fire():
            server = AsyncResolverServer(model, config)
            async with server:
                return await asyncio.gather(
                    *(server.query([record], k=5, mode="online") for _ in range(3))
                )

        served = run(fire())
        expected = serial_results(model, [record])[0]
        for result in served:
            assert_results_identical(result, expected)

    def test_multi_record_requests_coalesce_too(self, serve_world):
        model, holdout, _ = serve_world
        config = ServeConfig(max_batch_size=6, max_wait_us=200_000, min_wait_us=200_000)

        async def fire():
            server = AsyncResolverServer(model, config)
            async with server:
                return await asyncio.gather(
                    server.query(holdout[:2], k=5, mode="online"),
                    server.query(holdout[2:4], k=5, mode="online"),
                )

        first, second = run(fire())
        session = model.session()
        assert_results_identical(first, session.query(holdout[:2], k=5, mode="online"))
        assert_results_identical(second, session.query(holdout[2:4], k=5, mode="online"))


class TestBackpressure:
    def test_queue_full_rejects_immediately(self, serve_world):
        model, holdout, _ = serve_world
        config = ServeConfig(
            max_batch_size=16, max_wait_us=500_000, min_wait_us=500_000, max_queue=2
        )

        async def fire():
            server = AsyncResolverServer(model, config)
            async with server:
                pending = [
                    asyncio.ensure_future(server.query([record], mode="online"))
                    for record in holdout[:2]
                ]
                await asyncio.sleep(0.05)  # let both enter the batch group
                with pytest.raises(ServerOverloadedError):
                    await server.query([holdout[2]], mode="online")
                rejected = server.stats.requests_rejected
                for task in pending:
                    task.cancel()
                await asyncio.gather(*pending, return_exceptions=True)
                return rejected

        assert run(fire()) == 1

    def test_timeout_mid_batch_raises_and_batch_survives(self, serve_world):
        model, holdout, _ = serve_world
        config = ServeConfig(max_batch_size=16, max_wait_us=300_000, min_wait_us=300_000)

        async def fire():
            server = AsyncResolverServer(model, config)
            async with server:
                with pytest.raises(QueryTimeoutError):
                    await server.query([holdout[0]], mode="online", timeout=0.02)
                assert server.stats.requests_timed_out == 1
                # The abandoned request must not poison later traffic.
                await asyncio.sleep(0.35)
                result = await server.query([holdout[1]], mode="online", timeout=5.0)
            return result

        result = run(fire())
        expected = serial_results(model, [holdout[1]])[0]
        assert_results_identical(result, expected)

    def test_abandoned_request_holds_its_slot_until_flush(self, serve_world):
        model, holdout, _ = serve_world
        config = ServeConfig(
            max_batch_size=16, max_wait_us=400_000, min_wait_us=400_000, max_queue=1
        )

        async def fire():
            server = AsyncResolverServer(model, config)
            async with server:
                with pytest.raises(QueryTimeoutError):
                    await server.query([holdout[0]], mode="online", timeout=0.02)
                # The timed-out request's records still sit in the batch
                # window: its admission slot must stay held so max_queue
                # keeps bounding real outstanding work.
                with pytest.raises(ServerOverloadedError):
                    await server.query([holdout[1]], mode="online")
                await asyncio.sleep(0.5)  # window elapses, dropped item frees slot
                assert server.stats.queue_depth == 0
                result = await server.query([holdout[1]], mode="online", timeout=5.0)
            return result

        result = run(fire())
        expected = serial_results(model, [holdout[1]])[0]
        assert_results_identical(result, expected)

    def test_query_on_stopped_server_raises(self, serve_world):
        model, holdout, _ = serve_world

        async def fire():
            server = AsyncResolverServer(model)
            with pytest.raises(ServeError):
                await server.query([holdout[0]])

        run(fire())

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ServeConfig(max_batch_size=0)
        with pytest.raises(ConfigurationError):
            ServeConfig(min_wait_us=5000, max_wait_us=100)
        with pytest.raises(ConfigurationError):
            ServeConfig(max_queue=0)


class TestRegistryAndMmap:
    def test_path_backed_tenant_loads_lazily(self, serve_world):
        _, holdout, path = serve_world
        registry = ModelRegistry()
        registry.add("products", path=path, mmap=True)
        entry = registry.entry("products")
        assert not entry.loaded

        async def fire():
            async with AsyncResolverServer(registry) as server:
                return await server.query([holdout[0]], model="products")

        run(fire())
        assert entry.loaded

    def test_mmap_results_byte_identical_to_eager(self, serve_world):
        model, holdout, path = serve_world
        registry = ModelRegistry()
        registry.add("mapped", path=path, mmap=True)
        registry.add("eager", path=path, mmap=False)

        async def fire():
            async with AsyncResolverServer(registry) as server:
                mapped = await asyncio.gather(
                    *(server.query([r], model="mapped", k=5) for r in holdout)
                )
                eager = await asyncio.gather(
                    *(server.query([r], model="eager", k=5) for r in holdout)
                )
            return mapped, eager

        mapped, eager = run(fire())
        expected = serial_results(model, holdout)
        for m, e, x in zip(mapped, eager, expected):
            assert_results_identical(m, e)
            assert_results_identical(m, x)

    def test_two_tenants_with_different_configs(self, serve_world):
        model, holdout, path = serve_world
        registry = ModelRegistry()
        registry.add("inmem", model=model)
        registry.add("ondisk", path=path, mmap=True)
        names = {d["name"] for d in registry.describe()}
        assert names == {"inmem", "ondisk"}

        async def fire():
            async with AsyncResolverServer(registry) as server:
                first = await server.query([holdout[0]], model="inmem")
                second = await server.query([holdout[0]], model="ondisk")
                with pytest.raises(ServeError):
                    await server.query([holdout[0]], model="missing")
            return first, second

        first, second = run(fire())
        assert_results_identical(first, second)

    def test_evict_reloads_on_next_use(self, serve_world):
        _, holdout, path = serve_world
        registry = ModelRegistry()
        registry.add("products", path=path, mmap=True)
        registry.get("products")
        assert registry.evict("products")
        entry = registry.entry("products")
        assert not entry.loaded
        assert registry.get("products") is not None

    def test_session_borrowed_before_evict_is_not_pooled_again(self, serve_world):
        _, _, path = serve_world
        registry = ModelRegistry()
        registry.add("products", path=path, mmap=True)
        entry = registry.entry("products")
        stale = entry.session()  # borrowed, e.g. mid-batch
        assert registry.evict("products")
        entry.release(stale)  # released after the eviction: must be dropped
        fresh = entry.session()
        assert fresh is not stale, "evicted-generation session re-entered the pool"
        # Current-generation sessions still pool normally.
        entry.release(fresh)
        assert entry.session() is fresh


class TestReload:
    def test_registry_reload_picks_up_appended_segments(self, serve_world, tmp_path):
        _, holdout, path = serve_world
        staged = tmp_path / "model.npz"
        shutil.copyfile(path, staged)

        registry = ModelRegistry()
        registry.add("products", path=staged, mmap=True)
        before = registry.get("products")
        base_count = len(before.corpus)

        # Another process appends a delta segment to the artifact.
        offline = ResolverModel.load(staged, mmap=False)
        offline.update(upserts=holdout[:2], compact="never")
        offline.save(staged)

        # Same instance until reload; fresh, segment-replayed one after.
        assert registry.get("products") is before
        assert registry.reload("products")
        after = registry.get("products")
        assert after is not before
        assert len(after.corpus) == base_count + 2
        assert after.fingerprint() == offline.fingerprint()

    def test_reload_of_instance_backed_entry_is_typed_error(self, serve_world):
        model, _, _ = serve_world
        registry = ModelRegistry()
        registry.add("pinned", model=model)
        with pytest.raises(ReloadError, match="instance-backed"):
            registry.reload("pinned")
        # The entry itself stays usable after the refused reload.
        assert registry.get("pinned") is model

    def test_reload_over_tcp_serves_updated_corpus(self, serve_world, tmp_path):
        model, holdout, path = serve_world
        staged = tmp_path / "model.npz"
        shutil.copyfile(path, staged)
        probe = holdout[-1]

        registry = ModelRegistry()
        registry.add(DEFAULT_MODEL, path=staged, mmap=True)
        registry.add("pinned", model=model)

        def corpus_records(listing):
            (entry,) = [d for d in listing if d["name"] == DEFAULT_MODEL]
            return entry["corpus_records"]

        async def fire():
            server = AsyncResolverServer(registry)
            tcp = await server.serve_tcp(host="127.0.0.1", port=0)
            port = tcp.sockets[0].getsockname()[1]
            try:
                async with ServeClient("127.0.0.1", port) as client:
                    await client.query([probe], k=3)
                    base_count = corpus_records(await client.models())

                    offline = ResolverModel.load(staged, mmap=False)
                    offline.update(upserts=holdout[:2], compact="never")
                    offline.save(staged)

                    reply = await client.reload()
                    assert reply["reloaded"] and reply["dropped"]
                    served = await client.query([probe], k=3)
                    assert corpus_records(await client.models()) == base_count + 2

                    with pytest.raises(ReloadError, match="instance-backed"):
                        await client.reload("pinned")
                    with pytest.raises(ServeError):
                        await client.reload("missing-entry")
            finally:
                await server.stop()
            return served, offline

        served, offline = run(fire())
        expected = offline.session().query([probe], k=3, mode="online")
        assert_results_identical(served, expected)


class TestRetrievalDedupe:
    def test_duplicate_content_in_one_batch_retrieves_once(self, serve_world):
        model, holdout, _ = serve_world

        class CountingRetriever:
            """Delegate that records the record ids of each retrieve call."""

            def __init__(self, inner):
                self.inner = inner
                self.calls = []

            def retrieve(self, records, k):
                self.calls.append([record.record_id for record in records])
                return self.inner.retrieve(records, k)

        template = holdout[0]
        twins = [
            Record(record_id=f"twin-{i}", values=dict(template.values), source=template.source)
            for i in range(3)
        ]
        counting = CountingRetriever(model.retriever)
        original = model.retriever
        model.retriever = counting
        try:
            session = model.session()
            result = session.query(twins, k=5, mode="online")
        finally:
            model.retriever = original
        # One batch, three identical-content records: one ranking pass
        # over exactly one unique record.
        assert counting.calls == [["twin-0"]]
        per_record = result.candidates_per_record
        assert per_record["twin-0"] == per_record["twin-1"] == per_record["twin-2"]
        for intent in result.intents:
            probabilities = result.probabilities[intent]
            span = len(per_record["twin-0"])
            first = probabilities[:span]
            assert np.array_equal(probabilities[span : 2 * span], first)
            assert np.array_equal(probabilities[2 * span :], first)


class TestTcpProtocol:
    def test_round_trip_matches_serial(self, serve_world):
        model, holdout, _ = serve_world

        async def fire():
            server = AsyncResolverServer(model)
            tcp = await server.serve_tcp(host="127.0.0.1", port=0)
            port = tcp.sockets[0].getsockname()[1]
            try:
                async with ServeClient("127.0.0.1", port) as client:
                    assert await client.ping() == "pong"
                    listing = await client.models()
                    assert listing[0]["name"] == DEFAULT_MODEL
                    results = await asyncio.gather(
                        *(client.query([r], k=5, mode="online") for r in holdout[:4])
                    )
                    stats = await client.stats()
                    assert stats["requests_total"] >= 4
            finally:
                await server.stop()
            return results

        served = run(fire())
        for result, expected in zip(served, serial_results(model, holdout[:4])):
            assert_results_identical(result, expected)

    def test_wire_errors_surface_as_typed_exceptions(self, serve_world):
        model, holdout, _ = serve_world

        async def fire():
            server = AsyncResolverServer(model)
            tcp = await server.serve_tcp(host="127.0.0.1", port=0)
            port = tcp.sockets[0].getsockname()[1]
            try:
                async with ServeClient("127.0.0.1", port) as client:
                    with pytest.raises(ServeError):
                        await client.query([holdout[0]], model="missing")
            finally:
                await server.stop()

        run(fire())

    def test_lines_beyond_default_stream_limit_round_trip(self, serve_world):
        """Request and response lines over 64 KiB must be served, not hang.

        asyncio streams default to a 64 KiB readline limit; both sides
        must raise it to the protocol's MAX_LINE_BYTES or a modest batch
        kills the connection (and, pre-fix, hung every pending caller).
        """
        model, holdout, _ = serve_world
        template = holdout[0]
        # Identical-content twins: retrieval dedupes to one ranking pass,
        # while the shared padding pushes the request line past 64 KiB.
        values = dict(template.values)
        attribute = next(iter(values))
        values[attribute] = (values[attribute] or "") + "x" * 400
        twins = [
            Record(record_id=f"big-{i}", values=dict(values), source=template.source)
            for i in range(300)
        ]
        request = {
            "op": "query",
            "id": 1,
            "records": [
                {"record_id": r.record_id, "values": dict(r.values), "source": r.source}
                for r in twins
            ],
            "k": 5,
            "mode": "online",
        }
        line = json.dumps(request).encode() + b"\n"
        assert len(line) > 64 * 1024  # the request side exceeds the default limit

        async def fire():
            from repro.serve.protocol import MAX_LINE_BYTES

            server = AsyncResolverServer(model)
            tcp = await server.serve_tcp(host="127.0.0.1", port=0)
            port = tcp.sockets[0].getsockname()[1]
            try:
                # Raw connection first: prove the server both reads and
                # writes single lines larger than 64 KiB.
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port, limit=MAX_LINE_BYTES
                )
                writer.write(line)
                await writer.drain()
                response_line = await asyncio.wait_for(reader.readline(), 60)
                writer.close()
                with contextlib.suppress(Exception):
                    await writer.wait_closed()
                assert len(response_line) > 64 * 1024
                response = json.loads(response_line)
                assert response["ok"], response.get("error")
                # Then the bundled client, whose reader must survive the
                # same oversized response line.
                async with ServeClient("127.0.0.1", port) as client:
                    result = await asyncio.wait_for(
                        client.query(twins, k=5, mode="online"), 60
                    )
            finally:
                await server.stop()
            return result

        result = run(fire())
        session = model.session()
        expected = session.query(twins, k=5, mode="online")
        assert_results_identical(result, expected)

    def test_client_disconnect_during_flush_does_not_poison_server(self, serve_world):
        model, holdout, _ = serve_world
        config = ServeConfig(max_batch_size=16, max_wait_us=200_000, min_wait_us=200_000)

        async def fire():
            server = AsyncResolverServer(model, config)
            tcp = await server.serve_tcp(host="127.0.0.1", port=0)
            port = tcp.sockets[0].getsockname()[1]
            try:
                # Raw connection: fire a query, then vanish while it is
                # still waiting in the batch window.
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                request = {
                    "op": "query",
                    "id": 1,
                    "records": [
                        {
                            "record_id": holdout[0].record_id,
                            "values": dict(holdout[0].values),
                            "source": holdout[0].source,
                        }
                    ],
                    "mode": "online",
                }
                writer.write(json.dumps(request).encode() + b"\n")
                await writer.drain()
                await asyncio.sleep(0.02)  # request admitted, batch pending
                writer.close()
                with contextlib.suppress(Exception):
                    await writer.wait_closed()
                await asyncio.sleep(0.35)  # batch window elapses after the drop
                # The server must still answer new, well-behaved clients.
                async with ServeClient("127.0.0.1", port) as client:
                    result = await client.query(
                        [holdout[1]], k=5, mode="online", timeout=5.0
                    )
            finally:
                await server.stop()
            return result

        result = run(fire())
        expected = serial_results(model, [holdout[1]])[0]
        assert_results_identical(result, expected)


class TestLazyImport:
    def test_repro_serve_is_lazily_importable(self):
        import repro as top

        serve = top.serve
        assert serve.AsyncResolverServer is AsyncResolverServer
        assert "serve" in top.__all__

    def test_single_model_server_wraps_default_registry(self, serve_world):
        model, _, _ = serve_world
        server = AsyncResolverServer(model)
        assert isinstance(server.registry, ModelRegistry)
        assert server.registry.get(DEFAULT_MODEL) is model
