"""Tests for the hashing and TF-IDF vectorizers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ConfigurationError, NotFittedError
from repro.text.vectorizers import (
    HashingVectorizer,
    HashingVectorizerConfig,
    TfidfVectorizer,
)


class TestHashingVectorizer:
    def test_deterministic(self):
        vectorizer = HashingVectorizer()
        first = vectorizer.transform_one("nike air max 2016")
        second = vectorizer.transform_one("nike air max 2016")
        assert np.array_equal(first, second)

    def test_output_shape_and_norm(self):
        config = HashingVectorizerConfig(n_features=64)
        vectorizer = HashingVectorizer(config)
        matrix = vectorizer.transform(["nike air", "adidas boost"])
        assert matrix.shape == (2, 64)
        norms = np.linalg.norm(matrix, axis=1)
        assert np.allclose(norms[norms > 0], 1.0)

    def test_empty_text_gives_zero_vector(self):
        vector = HashingVectorizer().transform_one("")
        assert np.allclose(vector, 0.0)

    def test_empty_corpus(self):
        assert HashingVectorizer().transform([]).shape[0] == 0

    def test_salt_changes_projection(self):
        base = HashingVectorizer(HashingVectorizerConfig(n_features=64))
        salted = HashingVectorizer(HashingVectorizerConfig(n_features=64, salt="x"))
        text = "nike air max"
        assert not np.array_equal(base.transform_one(text), salted.transform_one(text))

    def test_similar_texts_are_closer_than_dissimilar(self):
        vectorizer = HashingVectorizer()
        anchor = vectorizer.transform_one("nike men air max running shoe")
        near = vectorizer.transform_one("nike men air max running shoes")
        far = vectorizer.transform_one("instant pot duo crisp pressure cooker")
        assert anchor @ near > anchor @ far

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            HashingVectorizerConfig(n_features=0)
        with pytest.raises(ConfigurationError):
            HashingVectorizerConfig(char_ngram_sizes=(), use_word_tokens=False)

    @given(st.text(alphabet="abcdef ", max_size=30))
    @settings(max_examples=40)
    def test_norm_bounded_property(self, text):
        vector = HashingVectorizer().transform_one(text)
        assert np.linalg.norm(vector) <= 1.0 + 1e-9


class TestTfidfVectorizer:
    def test_requires_fit(self):
        with pytest.raises(NotFittedError):
            TfidfVectorizer().transform(["nike"])

    def test_fit_transform_shapes(self):
        corpus = ["nike air max", "adidas ultraboost", "nike court vision"]
        matrix = TfidfVectorizer().fit_transform(corpus)
        assert matrix.shape[0] == 3
        assert matrix.shape[1] > 0

    def test_rows_are_l2_normalized(self):
        corpus = ["nike air max", "adidas ultraboost shoes"]
        matrix = TfidfVectorizer().fit_transform(corpus)
        norms = np.linalg.norm(matrix, axis=1)
        assert np.allclose(norms[norms > 0], 1.0)

    def test_min_df_filters_rare_tokens(self):
        corpus = ["nike air", "nike force", "nike zoom"]
        vectorizer = TfidfVectorizer(min_df=2).fit(corpus)
        assert set(vectorizer.vocabulary_) == {"nike"}

    def test_max_features_caps_vocabulary(self):
        corpus = ["a b c d e", "a b c", "a b"]
        vectorizer = TfidfVectorizer(max_features=2).fit(corpus)
        assert len(vectorizer.vocabulary_) == 2

    def test_rare_token_gets_higher_idf(self):
        corpus = ["nike air", "nike force", "nike zoom pegasus"]
        vectorizer = TfidfVectorizer().fit(corpus)
        idf = vectorizer.idf_
        vocab = vectorizer.vocabulary_
        assert idf[vocab["pegasus"]] > idf[vocab["nike"]]

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigurationError):
            TfidfVectorizer(min_df=0)
        with pytest.raises(ConfigurationError):
            TfidfVectorizer(max_features=0)
