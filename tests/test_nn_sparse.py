"""Tests for the sparse (edge-list) neighbourhood aggregation op."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import GraphConstructionError
from repro.nn import Tensor
from repro.nn.sparse import scatter_aggregate


class TestScatterAggregate:
    def test_simple_mean_aggregation(self):
        hidden = Tensor(np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]))
        # Node 0 aggregates nodes 1 and 2 with equal weights (mean).
        sources = np.array([1, 2])
        targets = np.array([0, 0])
        weights = np.array([0.5, 0.5])
        out = scatter_aggregate(hidden, sources, targets, 3, weights)
        assert np.allclose(out.numpy()[0], [4.0, 5.0])
        assert np.allclose(out.numpy()[1:], 0.0)

    def test_empty_edge_list_gives_zeros(self):
        hidden = Tensor(np.ones((4, 3)))
        out = scatter_aggregate(hidden, np.array([]), np.array([]), 4, np.array([]))
        assert np.allclose(out.numpy(), 0.0)

    def test_shape_validation(self):
        hidden = Tensor(np.ones((2, 2)))
        with pytest.raises(GraphConstructionError):
            scatter_aggregate(hidden, np.array([0]), np.array([0, 1]), 2, np.array([1.0]))
        with pytest.raises(GraphConstructionError):
            scatter_aggregate(
                Tensor(np.ones((3, 2))), np.array([0]), np.array([0]), 2, np.array([1.0])
            )

    def test_gradient_matches_dense_formulation(self):
        rng = np.random.default_rng(0)
        n, d = 6, 4
        data = rng.normal(size=(n, d))
        sources = np.array([0, 1, 2, 3, 4, 5, 0, 2])
        targets = np.array([1, 2, 3, 4, 5, 0, 3, 5])
        weights = rng.random(len(sources))

        # Sparse path.
        sparse_hidden = Tensor(data.copy(), requires_grad=True)
        sparse_out = scatter_aggregate(sparse_hidden, sources, targets, n, weights)
        (sparse_out * sparse_out).sum().backward()

        # Dense path.
        matrix = np.zeros((n, n))
        for s, t, w in zip(sources, targets, weights):
            matrix[t, s] += w
        dense_hidden = Tensor(data.copy(), requires_grad=True)
        dense_out = Tensor(matrix) @ dense_hidden
        (dense_out * dense_out).sum().backward()

        assert np.allclose(sparse_out.numpy(), dense_out.numpy())
        assert np.allclose(sparse_hidden.grad, dense_hidden.grad)

    @given(st.integers(2, 8), st.integers(1, 4), st.integers(0, 20))
    @settings(max_examples=30, deadline=None)
    def test_matches_dense_property(self, num_nodes, dim, num_edges):
        """Scatter aggregation equals the dense adjacency product for random graphs."""
        rng = np.random.default_rng(num_nodes * 100 + num_edges)
        data = rng.normal(size=(num_nodes, dim))
        sources = rng.integers(0, num_nodes, size=num_edges)
        targets = rng.integers(0, num_nodes, size=num_edges)
        weights = rng.random(num_edges)
        sparse = scatter_aggregate(Tensor(data), sources, targets, num_nodes, weights).numpy()
        matrix = np.zeros((num_nodes, num_nodes))
        for s, t, w in zip(sources, targets, weights):
            matrix[t, s] += w
        assert np.allclose(sparse, matrix @ data)
