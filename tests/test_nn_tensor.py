"""Tests for the autodiff engine, including numerical gradient checks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn.tensor import Tensor


def numerical_gradient(function, array: np.ndarray, epsilon: float = 1e-6) -> np.ndarray:
    """Central-difference numerical gradient of a scalar function."""
    gradient = np.zeros_like(array)
    flat = array.reshape(-1)
    flat_gradient = gradient.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        plus = function(array)
        flat[index] = original - epsilon
        minus = function(array)
        flat[index] = original
        flat_gradient[index] = (plus - minus) / (2 * epsilon)
    return gradient


small_matrices = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 4), st.integers(1, 4)),
    elements=st.floats(-2.0, 2.0, allow_nan=False),
)


class TestTensorBasics:
    def test_scalar_backward_requires_scalar(self):
        tensor = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            tensor.backward()

    def test_add_and_mul_grads(self):
        a = Tensor([[1.0, 2.0]], requires_grad=True)
        b = Tensor([[3.0, 4.0]], requires_grad=True)
        loss = (a * b + a).sum()
        loss.backward()
        assert np.allclose(a.grad, [[4.0, 5.0]])
        assert np.allclose(b.grad, [[1.0, 2.0]])

    def test_broadcast_bias_grad(self):
        x = Tensor(np.ones((3, 2)), requires_grad=True)
        bias = Tensor(np.zeros(2), requires_grad=True)
        loss = (x + bias).sum()
        loss.backward()
        assert bias.grad.shape == (2,)
        assert np.allclose(bias.grad, [3.0, 3.0])

    def test_matmul_grads(self):
        a = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]), requires_grad=True)
        b = Tensor(np.array([[1.0], [1.0]]), requires_grad=True)
        loss = (a @ b).sum()
        loss.backward()
        assert np.allclose(a.grad, np.ones((2, 2)))
        assert np.allclose(b.grad, [[4.0], [6.0]])

    def test_detach_cuts_graph(self):
        a = Tensor([[1.0]], requires_grad=True)
        detached = (a * 2).detach()
        assert detached.requires_grad is False

    def test_index_select_scatter_adds(self):
        a = Tensor(np.arange(6, dtype=float).reshape(3, 2), requires_grad=True)
        selected = a.index_select([0, 0, 2])
        loss = selected.sum()
        loss.backward()
        assert np.allclose(a.grad, [[2.0, 2.0], [0.0, 0.0], [1.0, 1.0]])

    def test_concat_splits_gradient(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        loss = (Tensor.concat([a, b], axis=1) * 2).sum()
        loss.backward()
        assert np.allclose(a.grad, 2.0)
        assert np.allclose(b.grad, 2.0)

    def test_zero_grad_resets(self):
        a = Tensor([[1.0]], requires_grad=True)
        (a * 3).sum().backward()
        assert a.grad is not None
        a.zero_grad()
        assert a.grad is None

    def test_constant_nodes_do_not_break_backward(self):
        a = Tensor([[1.0, 2.0]], requires_grad=True)
        constant = Tensor([[5.0, 5.0]])
        loss = ((constant - Tensor(1.0)) * a).sum()
        loss.backward()
        assert np.allclose(a.grad, [[4.0, 4.0]])


class TestNumericalGradients:
    @pytest.mark.parametrize(
        "operation",
        [
            lambda t: t.relu().sum(),
            lambda t: t.sigmoid().sum(),
            lambda t: t.tanh().sum(),
            lambda t: (t * t).mean(),
            lambda t: t.exp().sum(),
            lambda t: (t.sigmoid() + 0.1).log().sum(),
            lambda t: t.log_softmax(axis=1).sum(),
            lambda t: t.softmax(axis=1).max(axis=1).sum(),
        ],
    )
    def test_elementwise_ops_match_numerical(self, operation):
        array = np.random.default_rng(0).normal(size=(3, 4))
        tensor = Tensor(array.copy(), requires_grad=True)
        operation(tensor).backward()

        def scalar_function(values: np.ndarray) -> float:
            return float(operation(Tensor(values.copy())).numpy().sum())

        numeric = numerical_gradient(scalar_function, array.copy())
        assert np.allclose(tensor.grad, numeric, atol=1e-4)

    def test_two_layer_network_gradient(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(5, 3))
        w1 = rng.normal(size=(3, 4))
        w2 = rng.normal(size=(4, 1))

        def loss_for(weights: np.ndarray) -> float:
            h = np.maximum(x @ weights, 0.0)
            return float(((h @ w2) ** 2).mean())

        w1_tensor = Tensor(w1.copy(), requires_grad=True)
        hidden = (Tensor(x) @ w1_tensor).relu()
        loss = ((hidden @ Tensor(w2)).pow(2.0)).mean()
        loss.backward()
        numeric = numerical_gradient(loss_for, w1.copy())
        assert np.allclose(w1_tensor.grad, numeric, atol=1e-4)

    @given(small_matrices)
    @settings(max_examples=25, deadline=None)
    def test_sum_gradient_is_ones(self, array):
        tensor = Tensor(array, requires_grad=True)
        tensor.sum().backward()
        assert np.allclose(tensor.grad, np.ones_like(array))

    @given(small_matrices)
    @settings(max_examples=25, deadline=None)
    def test_mean_gradient_is_uniform(self, array):
        tensor = Tensor(array, requires_grad=True)
        tensor.mean().backward()
        assert np.allclose(tensor.grad, np.full_like(array, 1.0 / array.size))


class TestSoftmax:
    def test_softmax_rows_sum_to_one(self):
        tensor = Tensor(np.random.default_rng(2).normal(size=(4, 6)))
        probabilities = tensor.softmax(axis=1).numpy()
        assert np.allclose(probabilities.sum(axis=1), 1.0)
        assert (probabilities >= 0).all()

    def test_log_softmax_is_stable_for_large_inputs(self):
        tensor = Tensor(np.array([[1000.0, 0.0]]))
        values = tensor.log_softmax(axis=1).numpy()
        assert np.isfinite(values).all()
