"""Tests for DITTO-style record pair serialization."""

from __future__ import annotations

from repro.data.records import Record
from repro.data.serialization import (
    CLS_TOKEN,
    SEP_TOKEN,
    SerializationConfig,
    serialize_candidates,
    serialize_pair,
    serialize_record,
)
from repro.data.pairs import RecordPair


class TestSerializeRecord:
    def test_col_val_structure(self):
        record = Record("r1", {"title": "Nike Air Max", "brand": "Nike"})
        serialized = serialize_record(record)
        assert serialized == "COL title VAL nike air max COL brand VAL nike"

    def test_null_values_skipped(self):
        record = Record("r1", {"title": "Nike Air", "brand": None})
        assert "brand" not in serialize_record(record)

    def test_attribute_selection_and_case(self):
        record = Record("r1", {"title": "Nike Air", "brand": "NIKE"})
        serialized = serialize_record(record, attributes=["brand"], lowercase=False)
        assert serialized == "COL brand VAL NIKE"


class TestSerializePair:
    def test_contains_cls_and_separators(self, toy_dataset):
        left = toy_dataset["r1"]
        right = toy_dataset["r2"]
        serialized = serialize_pair(left, right)
        assert serialized.startswith(CLS_TOKEN)
        assert serialized.count(SEP_TOKEN) == 2

    def test_max_tokens_truncation(self, toy_dataset):
        config = SerializationConfig(max_tokens=8)
        serialized = serialize_pair(toy_dataset["r2"], toy_dataset["r3"], config)
        tokens = serialized.split()
        assert len(tokens) <= 9  # truncation may append a closing SEP
        assert tokens[-1] == SEP_TOKEN

    def test_symmetric_content_not_symmetric_order(self, toy_dataset):
        left_first = serialize_pair(toy_dataset["r1"], toy_dataset["r2"])
        right_first = serialize_pair(toy_dataset["r2"], toy_dataset["r1"])
        assert left_first != right_first
        assert sorted(left_first.split()) == sorted(right_first.split())


class TestSerializeCandidates:
    def test_one_string_per_pair(self, toy_dataset):
        pairs = [RecordPair("r1", "r2"), RecordPair("r3", "r4")]
        serialized = serialize_candidates(toy_dataset, pairs)
        assert len(serialized) == 2
        assert all(CLS_TOKEN in text for text in serialized)


class TestArtifactSchemaVersion:
    def test_written_artifacts_are_stamped(self, toy_dataset, tmp_path):
        import numpy as np

        from repro.data.serialization import (
            ARTIFACT_SCHEMA_VERSION,
            SCHEMA_VERSION_KEY,
            read_artifact,
            write_artifact,
        )

        path = write_artifact(tmp_path / "a", {"x": np.arange(3)}, {"note": "hi"})
        # The raw on-disk document carries the stamp...
        import json

        with np.load(path, allow_pickle=False) as data:
            document = json.loads(bytes(data["__artifact_metadata__"].tobytes()))
        assert document[SCHEMA_VERSION_KEY] == ARTIFACT_SCHEMA_VERSION
        # ...while readers see the user metadata unchanged.
        arrays, metadata = read_artifact(path)
        assert metadata == {"note": "hi"}
        assert np.array_equal(arrays["x"], np.arange(3))

    def test_version_key_is_reserved(self, tmp_path):
        import numpy as np
        import pytest

        from repro.data.serialization import SCHEMA_VERSION_KEY, write_artifact
        from repro.exceptions import DataError

        with pytest.raises(DataError, match="reserved"):
            write_artifact(tmp_path / "a", {"x": np.arange(3)}, {SCHEMA_VERSION_KEY: 9})

    def test_newer_schema_is_rejected_with_clear_error(self, tmp_path):
        import json

        import numpy as np
        import pytest

        from repro.data.serialization import (
            ARTIFACT_SCHEMA_VERSION,
            METADATA_KEY,
            SCHEMA_VERSION_KEY,
            read_artifact,
        )
        from repro.exceptions import DataError

        # Forge an artifact "from the future" by writing the container
        # directly with a bumped version stamp.
        document = json.dumps(
            {SCHEMA_VERSION_KEY: ARTIFACT_SCHEMA_VERSION + 1}
        ).encode("utf-8")
        path = tmp_path / "future.npz"
        np.savez(
            path,
            **{
                METADATA_KEY: np.frombuffer(document, dtype=np.uint8),
                "array::x": np.arange(3),
            },
        )
        with pytest.raises(DataError, match="schema version"):
            read_artifact(path)

    def test_unversioned_artifacts_still_read(self, tmp_path):
        import json

        import numpy as np

        from repro.data.serialization import METADATA_KEY, read_artifact

        document = json.dumps({"legacy": True}).encode("utf-8")
        path = tmp_path / "legacy.npz"
        np.savez(
            path,
            **{
                METADATA_KEY: np.frombuffer(document, dtype=np.uint8),
                "array::x": np.arange(2),
            },
        )
        arrays, metadata = read_artifact(path)
        assert metadata == {"legacy": True}
        assert np.array_equal(arrays["x"], np.arange(2))


class TestLazyArtifactReads:
    def _sample_arrays(self):
        import numpy as np

        return {
            "floats": np.linspace(0.0, 1.0, 12, dtype=np.float64).reshape(3, 4),
            "ints": np.arange(7, dtype=np.int64),
            "empty": np.zeros((0, 5), dtype=np.float32),
            "scalarish": np.array(3.5, dtype=np.float64),
        }

    def test_lazy_read_equals_eager_read(self, tmp_path):
        import numpy as np

        from repro.data.serialization import (
            read_artifact,
            read_artifact_lazy,
            write_artifact,
        )

        path = write_artifact(tmp_path / "a", self._sample_arrays(), {"note": "hi"})
        eager_arrays, eager_meta = read_artifact(path)
        lazy_arrays, lazy_meta = read_artifact_lazy(path)
        assert lazy_meta == eager_meta
        assert sorted(lazy_arrays) == sorted(eager_arrays)
        for key, expected in eager_arrays.items():
            actual = lazy_arrays[key]
            assert actual.dtype == expected.dtype, key
            assert actual.shape == expected.shape, key
            assert np.array_equal(np.asarray(actual), expected), key

    def test_stored_members_are_memory_mapped(self, tmp_path):
        import numpy as np

        from repro.data.serialization import read_artifact_lazy, write_artifact

        path = write_artifact(tmp_path / "a", self._sample_arrays(), {})
        lazy_arrays, _ = read_artifact_lazy(path)
        assert lazy_arrays.mapped  # np.savez members are stored uncompressed
        assert isinstance(lazy_arrays["floats"], np.memmap)
        assert not lazy_arrays["floats"].flags.writeable
        # Zero-length members fall back to plain arrays (np.memmap
        # refuses empty maps) but keep shape and dtype.
        empty = lazy_arrays["empty"]
        assert empty.shape == (0, 5) and empty.dtype == np.float32

    def test_lazy_mapping_interface(self, tmp_path):
        from repro.data.serialization import read_artifact_lazy, write_artifact

        path = write_artifact(tmp_path / "a", self._sample_arrays(), {})
        lazy_arrays, _ = read_artifact_lazy(path)
        assert len(lazy_arrays) == 4
        assert "floats" in lazy_arrays
        assert "missing" not in lazy_arrays
        assert lazy_arrays["ints"] is lazy_arrays["ints"]  # cached after first touch
        import pytest

        with pytest.raises(KeyError):
            lazy_arrays["missing"]

    def test_lazy_reader_rejects_non_artifacts(self, tmp_path):
        import numpy as np
        import pytest

        from repro.data.serialization import read_artifact_lazy
        from repro.exceptions import DataError

        bogus = tmp_path / "bogus.npz"
        np.savez(bogus, x=np.arange(3))
        with pytest.raises(DataError):
            read_artifact_lazy(bogus)
