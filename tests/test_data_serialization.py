"""Tests for DITTO-style record pair serialization."""

from __future__ import annotations

from repro.data.records import Record
from repro.data.serialization import (
    CLS_TOKEN,
    SEP_TOKEN,
    SerializationConfig,
    serialize_candidates,
    serialize_pair,
    serialize_record,
)
from repro.data.pairs import RecordPair


class TestSerializeRecord:
    def test_col_val_structure(self):
        record = Record("r1", {"title": "Nike Air Max", "brand": "Nike"})
        serialized = serialize_record(record)
        assert serialized == "COL title VAL nike air max COL brand VAL nike"

    def test_null_values_skipped(self):
        record = Record("r1", {"title": "Nike Air", "brand": None})
        assert "brand" not in serialize_record(record)

    def test_attribute_selection_and_case(self):
        record = Record("r1", {"title": "Nike Air", "brand": "NIKE"})
        serialized = serialize_record(record, attributes=["brand"], lowercase=False)
        assert serialized == "COL brand VAL NIKE"


class TestSerializePair:
    def test_contains_cls_and_separators(self, toy_dataset):
        left = toy_dataset["r1"]
        right = toy_dataset["r2"]
        serialized = serialize_pair(left, right)
        assert serialized.startswith(CLS_TOKEN)
        assert serialized.count(SEP_TOKEN) == 2

    def test_max_tokens_truncation(self, toy_dataset):
        config = SerializationConfig(max_tokens=8)
        serialized = serialize_pair(toy_dataset["r2"], toy_dataset["r3"], config)
        tokens = serialized.split()
        assert len(tokens) <= 9  # truncation may append a closing SEP
        assert tokens[-1] == SEP_TOKEN

    def test_symmetric_content_not_symmetric_order(self, toy_dataset):
        left_first = serialize_pair(toy_dataset["r1"], toy_dataset["r2"])
        right_first = serialize_pair(toy_dataset["r2"], toy_dataset["r1"])
        assert left_first != right_first
        assert sorted(left_first.split()) == sorted(right_first.split())


class TestSerializeCandidates:
    def test_one_string_per_pair(self, toy_dataset):
        pairs = [RecordPair("r1", "r2"), RecordPair("r3", "r4")]
        serialized = serialize_candidates(toy_dataset, pairs)
        assert len(serialized) == 2
        assert all(CLS_TOKEN in text for text in serialized)
