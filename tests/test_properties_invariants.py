"""Cross-module property-based tests on core invariants.

These tests exercise invariants that hold for *any* input: clustering is
a partition, clean views keep exactly one representative per cluster,
golden resolutions achieve perfect scores, blocking output is always
admissible, and the intent-relationship derivation is consistent with
the label matrix it was computed from.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import IntentSet, Resolution
from repro.data.pairs import CandidateSet, LabeledPair, RecordPair
from repro.data.records import Dataset, Record
from repro.evaluation import evaluate_binary, evaluate_solution
from repro.core.mier import MIERSolution


def _dataset(num_records: int) -> Dataset:
    records = [
        Record(record_id=f"r{i:02d}", values={"title": f"product {i}"})
        for i in range(num_records)
    ]
    return Dataset(records=records, name="synthetic", attributes=("title",))


@st.composite
def labeled_candidate_sets(draw):
    """Random small candidate sets labeled for two intents where eq ⊆ broad."""
    num_records = draw(st.integers(min_value=3, max_value=8))
    dataset = _dataset(num_records)
    ids = dataset.record_ids
    all_pairs = [(a, b) for i, a in enumerate(ids) for b in ids[i + 1 :]]
    chosen = draw(
        st.lists(st.sampled_from(all_pairs), min_size=1, max_size=len(all_pairs), unique=True)
    )
    candidates = CandidateSet(dataset, intents=("equivalence", "broad"))
    for left, right in chosen:
        eq = draw(st.integers(0, 1))
        # Enforce subsumption: equivalence positive implies broad positive.
        broad = 1 if eq == 1 else draw(st.integers(0, 1))
        candidates.add(
            LabeledPair(pair=RecordPair(left, right), labels={"equivalence": eq, "broad": broad})
        )
    return dataset, candidates


class TestResolutionInvariants:
    @given(labeled_candidate_sets())
    @settings(max_examples=40, deadline=None)
    def test_clusters_partition_the_dataset(self, data):
        dataset, candidates = data
        resolution = Resolution.from_labels(candidates, "broad")
        clusters = resolution.clusters(dataset)
        covered = [record_id for cluster in clusters for record_id in cluster]
        assert sorted(covered) == sorted(dataset.record_ids)
        assert len(covered) == len(set(covered))

    @given(labeled_candidate_sets())
    @settings(max_examples=40, deadline=None)
    def test_clean_view_has_one_representative_per_cluster(self, data):
        dataset, candidates = data
        resolution = Resolution.from_labels(candidates, "equivalence")
        clusters = resolution.clusters(dataset)
        clean = resolution.clean_view(dataset)
        assert len(clean) == len(clusters)
        for cluster in clusters:
            assert len(cluster & set(clean.record_ids)) == 1

    @given(labeled_candidate_sets())
    @settings(max_examples=40, deadline=None)
    def test_broader_intent_never_merges_fewer_records(self, data):
        """A subsuming intent has at least as many matched pairs, so its clean view is no larger."""
        dataset, candidates = data
        narrow = Resolution.from_labels(candidates, "equivalence")
        broad = Resolution.from_labels(candidates, "broad")
        assert narrow.pairs <= broad.pairs
        assert len(broad.clean_view(dataset)) <= len(narrow.clean_view(dataset))


class TestEvaluationInvariants:
    @given(labeled_candidate_sets())
    @settings(max_examples=40, deadline=None)
    def test_golden_predictions_score_perfectly(self, data):
        _, candidates = data
        solution = MIERSolution(
            candidates,
            predictions={intent: candidates.labels(intent) for intent in candidates.intents},
        )
        evaluation = evaluate_solution(solution)
        assert evaluation.mi_f1 == pytest.approx(
            np.mean([1.0 if candidates.labels(i).sum() else 0.0 for i in candidates.intents])
        )
        assert evaluation.mi_accuracy == 1.0

    @given(labeled_candidate_sets())
    @settings(max_examples=40, deadline=None)
    def test_flipping_predictions_never_improves_accuracy(self, data):
        _, candidates = data
        labels = candidates.labels("equivalence")
        correct = evaluate_binary(labels, labels)
        flipped = evaluate_binary(1 - labels, labels)
        assert flipped.accuracy <= correct.accuracy


class TestIntentRelationshipInvariants:
    @given(labeled_candidate_sets())
    @settings(max_examples=40, deadline=None)
    def test_derived_subsumption_matches_construction(self, data):
        """The generator enforces eq ⊆ broad, so the derivation must find it."""
        _, candidates = data
        relationships = IntentSet.from_candidates(candidates).relationships(candidates)
        assert relationships.is_sub_intent("equivalence", "broad")

    @given(labeled_candidate_sets())
    @settings(max_examples=40, deadline=None)
    def test_overlap_is_symmetric_and_implied_by_shared_positive(self, data):
        _, candidates = data
        relationships = IntentSet.from_candidates(candidates).relationships(candidates)
        eq = candidates.labels("equivalence")
        broad = candidates.labels("broad")
        shares_positive = bool(np.any((eq == 1) & (broad == 1)))
        assert relationships.overlapping("equivalence", "broad") == shares_positive
        assert relationships.overlapping("broad", "equivalence") == shares_positive
